"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main


def test_match_rmat(capsys):
    assert main(["match", "--rmat", "er:8", "--certify"]) == 0
    out = capsys.readouterr().out
    assert "maximum" in out
    assert "VERIFIED maximum" in out


def test_match_suite_input(capsys):
    assert main(["match", "--suite", "amazon-2008", "--target-nnz", "5000"]) == 0
    assert "graph" in capsys.readouterr().out


def test_match_mtx_and_output(tmp_path, capsys):
    from repro.sparse import COO, mmio

    path = tmp_path / "g.mtx"
    mmio.write_mm(COO.from_edges(3, 3, [(0, 0), (1, 1), (2, 2), (0, 1)]), path)
    out_npz = tmp_path / "mates.npz"
    assert main(["match", "--mtx", str(path), "--out", str(out_npz)]) == 0
    data = np.load(out_npz)
    assert (data["mate_r"] != -1).sum() == 3


def test_match_requires_exactly_one_input():
    with pytest.raises(SystemExit):
        main(["match"])
    with pytest.raises(SystemExit):
        main(["match", "--rmat", "er:6", "--suite", "road_usa"])


def test_match_rejects_bad_rmat_spec():
    with pytest.raises(SystemExit):
        main(["match", "--rmat", "banana"])


def test_match_direction_and_noprune(capsys):
    assert main(["match", "--rmat", "er:8", "--direction", "auto", "--no-prune"]) == 0


def test_suite_listing(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "road_usa" in out and "nlpkkt200" in out


def test_scaling_study(capsys):
    assert main([
        "scaling", "--rmat", "er:8", "--cores", "24,108", "--breakdown",
    ]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out and "SpMV" in out


def test_spmd_run(capsys):
    assert main(["spmd", "--rmat", "er:7", "--pr", "2", "--pc", "2"]) == 0
    out = capsys.readouterr().out
    assert "grid 2x2" in out


def test_spmd_verify_reports_checked_counts(capsys):
    assert main(["spmd", "--rmat", "er:7", "--pr", "2", "--pc", "2", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "verification: PASSED" in out
    assert "collective entries cross-checked" in out


def test_spmd_timeout_flag(capsys):
    assert main(["spmd", "--rmat", "er:6", "--pr", "2", "--pc", "2",
                 "--timeout", "30"]) == 0
    assert "matched" in capsys.readouterr().out


def test_spmd_stats_json_dump(tmp_path, capsys):
    import json

    path = tmp_path / "stats.json"
    assert main(["spmd", "--rmat", "er:6", "--pr", "2", "--pc", "2",
                 "--direction", "auto", "--stats-json", str(path)]) == 0
    assert f"stats written to {path}" in capsys.readouterr().out
    stats = json.loads(path.read_text())
    assert stats["grid"] == {"pr": 2, "pc": 2}
    assert stats["cardinality"] == stats["final_cardinality"] > 0
    assert stats["phases"] >= 1
    assert stats["total_words"] >= stats["expand_words"] + stats["fold_words"] > 0
    # the per-algorithm collective counters made it through serialization
    by_alg = stats["comm_by_alg"]
    assert any(key.startswith("allgather:") for key in by_alg)
    assert any(key.startswith("alltoall:") for key in by_alg)
    for counters in by_alg.values():
        assert set(counters) == {"calls", "messages", "words", "steps"}
        assert counters["calls"] >= 1


def test_spmd_trace_and_trace_report(tmp_path, capsys):
    import json

    from repro.runtime.trace import DistTrace

    trace_path = tmp_path / "out.json"
    stats_path = tmp_path / "stats.json"
    assert main(["spmd", "--rmat", "er:7", "--pr", "2", "--pc", "2",
                 "--trace", str(trace_path), "--trace-clock", "ticks",
                 "--stats-json", str(stats_path)]) == 0
    out = capsys.readouterr().out
    assert f"trace written to {trace_path}" in out

    # Perfetto-loadable: valid JSON with trace events, and the traced
    # per-op:alg word totals equal the stats' collective counters exactly
    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"]
    trace = DistTrace.from_chrome(doc)
    by_alg = json.loads(stats_path.read_text())["comm_by_alg"]
    traced = trace.comm_words_by_key()
    assert set(traced) == set(by_alg)
    for key, counters in by_alg.items():
        assert traced[key] == counters["words"], key

    assert main(["trace-report", str(trace_path), "--top", "3"]) == 0
    report = capsys.readouterr().out
    assert "critical path" in report
    assert "phase 1" in report  # dominant span named per phase
    assert "top spans by self time:" in report

    assert main(["trace-report", str(trace_path), "--format", "json"]) == 0
    rep = json.loads(capsys.readouterr().out)
    assert rep["nranks"] == 4
    assert all(ph["dominant"] for ph in rep["phases"])


def test_spmd_chaos_trace_exports_restart_spans(tmp_path, capsys):
    import json

    trace_path = tmp_path / "chaos.json"
    assert main(["spmd", "--rmat", "er:6", "--pr", "2", "--pc", "2",
                 "--chaos", "1", "--max-restarts", "20",
                 "--trace", str(trace_path), "--trace-clock", "ticks"]) == 0
    doc = json.loads(trace_path.read_text())
    names = {ev["name"] for ev in doc["traceEvents"] if ev.get("cat") == "fault"}
    assert "restart" in names
    assert main(["trace-report", str(trace_path)]) == 0
    assert "restart(s)" in capsys.readouterr().out


def test_spmd_chaos_recovers_and_reports(capsys):
    assert main(["spmd", "--rmat", "er:6", "--pr", "2", "--pc", "2",
                 "--chaos", "1"]) == 0
    out = capsys.readouterr().out
    assert "chaos seed 1" in out
    assert "restart(s)" in out and "checkpoint words" in out
    assert "matched" in out


def test_spmd_chaos_matches_fault_free_cardinality(capsys):
    assert main(["spmd", "--rmat", "er:6", "--pr", "2", "--pc", "2"]) == 0
    plain = capsys.readouterr().out
    assert main(["spmd", "--rmat", "er:6", "--pr", "2", "--pc", "2",
                 "--chaos", "3",
                 "--chaos-plan", "crash:rank=any,at=phase:every;delay:p=0.2",
                 "--max-restarts", "20"]) == 0
    chaos = capsys.readouterr().out
    # same recovered cardinality (phase/iteration counts differ: the last
    # successful attempt resumed from a checkpoint)
    import re

    card = lambda s: re.search(r"matched ([\d,]+)", s).group(1)  # noqa: E731
    assert card(chaos) == card(plain)


def test_spmd_chaos_with_checkpoint_dir(tmp_path, capsys):
    ckdir = tmp_path / "cks"
    assert main(["spmd", "--rmat", "er:6", "--pr", "2", "--pc", "2",
                 "--chaos", "0", "--checkpoint-every", "2",
                 "--checkpoint-dir", str(ckdir), "--max-restarts", "20"]) == 0
    assert any(ckdir.glob("ck_phase*.npz"))  # snapshots persisted to disk


def test_spmd_chaos_rejects_bad_plan():
    with pytest.raises(ValueError):
        main(["spmd", "--rmat", "er:6", "--chaos", "0",
              "--chaos-plan", "explode:p=1"])
