"""Machine model and collective cost formula properties."""

import math

import pytest

from repro.perfmodel import EDISON, BspClock, Breakdown, Category, MachineSpec, collectives as C


# -- MachineSpec --------------------------------------------------------------

def test_square_grid_matches_paper_setup():
    """24 cores with 6 threads -> 2x2 grid (the paper's single-node config);
    2048+ cores with 12 threads -> 13x13."""
    g = EDISON.square_grid(24, threads=6)
    assert (g.pr, g.pc, g.threads) == (2, 2, 6)
    assert g.cores == 24
    g = EDISON.square_grid(2048, threads=12)
    assert g.pr == g.pc == int(math.isqrt(2048 // 12))


def test_square_grid_flat_mpi():
    g = EDISON.square_grid(256, threads=1)
    assert (g.pr, g.pc) == (16, 16)
    assert g.nprocs == 256


def test_square_grid_rejects_undersized_allocation():
    with pytest.raises(ValueError):
        EDISON.square_grid(4, threads=12)


def test_comm_params_intra_vs_inter_node():
    a_in, b_in = EDISON.comm_params(nprocs=2, threads=12)   # 24 cores: one node
    a_out, b_out = EDISON.comm_params(nprocs=4, threads=12)  # 48 cores: 2 nodes
    assert a_in == EDISON.alpha_intra and a_out == EDISON.alpha
    assert a_in < a_out
    assert b_in < b_out


def test_compute_time_scales_with_threads():
    t1 = EDISON.compute_time(1e6, threads=1)
    t12 = EDISON.compute_time(1e6, threads=12)
    assert t1 == pytest.approx(12 * t12)


# -- collective cost formulas --------------------------------------------------

A, B = 1e-6, 1e-9


def test_p2p_and_rma_costs():
    assert C.p2p(A, B, 100) == pytest.approx(A + 100 * B)
    assert C.rma_op(A, B) == pytest.approx(A + B)


def test_single_process_collectives_are_free():
    assert C.allgather_ring(1, A, B, 100) == 0.0
    assert C.alltoallv_pairwise(1, A, B, 100) == 0.0
    assert C.gather_direct(1, A, B, 100) == 0.0
    assert C.barrier_dissemination(1, A) == 0.0


def test_allgather_ring_latency_linear_in_p():
    c4 = C.allgather_ring(4, A, 0.0, 0.0)
    c8 = C.allgather_ring(8, A, 0.0, 0.0)
    assert c8 / c4 == pytest.approx(7 / 3)


def test_alltoallv_latency_dominates_at_scale():
    """INVERT's all-to-all over P processes must cost ~αP latency — the
    strong-scaling bottleneck the paper identifies."""
    p_small, p_large = 16, 1024
    words = 10.0
    small = C.alltoallv_pairwise(p_small, A, B, words)
    large = C.alltoallv_pairwise(p_large, A, B, words)
    assert large / small == pytest.approx((p_large - 1) / (p_small - 1), rel=1e-3)


def test_bcast_reduce_logarithmic():
    assert C.bcast_binomial(1024, A, 0.0, 0.0) == pytest.approx(10 * A)
    assert C.reduce_binomial(1024, A, 0.0, 0.0) == pytest.approx(10 * A)
    assert C.allreduce(1024, A, 0.0, 0.0) == pytest.approx(20 * A)


def test_spmv_phases_use_sqrt_p_communicators():
    """expand/fold run over one grid dimension: costs depend on √P, not P."""
    pr = 8
    exp = C.spmv_expand(pr, A, B, 1000)
    assert exp == C.allgather_ring(pr, A, B, 1000)
    fold = C.spmv_fold(pr, A, B, 1000)
    assert fold == C.alltoallv_pairwise(pr, A, B, 1000)


def test_costs_monotone_in_volume():
    assert C.allgather_ring(8, A, B, 2000) > C.allgather_ring(8, A, B, 1000)
    assert C.alltoallv_pairwise(8, A, B, 2000) > C.alltoallv_pairwise(8, A, B, 1000)
    assert C.gather_direct(8, A, B, 2000) > C.gather_direct(8, A, B, 1000)


# -- BspClock and Breakdown ------------------------------------------------------

def test_clock_accumulates_time_and_breakdown():
    clock = BspClock(EDISON, EDISON.square_grid(96, threads=12))
    d1 = clock.step(Category.SPMV, max_ops=1e6, comm_seconds=1e-3)
    d2 = clock.charge_comm(Category.INVERT, 2e-3)
    assert clock.time == pytest.approx(d1 + d2)
    assert clock.breakdown.seconds(Category.SPMV) == pytest.approx(d1)
    assert clock.breakdown.seconds(Category.INVERT) == pytest.approx(2e-3)
    assert clock.breakdown.entries[Category.SPMV].steps == 1


def test_clock_compute_uses_thread_count():
    g1 = EDISON.square_grid(96, threads=1)
    g12 = EDISON.square_grid(1152, threads=12)  # same process count: 96... (9x9 vs 9x9)
    c1 = BspClock(EDISON, g1)
    c12 = BspClock(EDISON, g12)
    c1.charge_compute(Category.SPMV, 1e6)
    c12.charge_compute(Category.SPMV, 1e6)
    assert c1.time == pytest.approx(12 * c12.time)


def test_breakdown_fraction_and_merge():
    b = Breakdown()
    b.charge(Category.SPMV, 3.0, 1.0)
    b.charge(Category.INVERT, 0.0, 1.0)
    assert b.total == pytest.approx(5.0)
    assert b.fraction(Category.SPMV) == pytest.approx(0.8)
    assert b.fraction(Category.PRUNE) == 0.0
    merged = b.merged(b)
    assert merged.total == pytest.approx(10.0)
    assert merged.entries[Category.SPMV].steps == 2


def test_breakdown_table_formats():
    b = Breakdown()
    b.charge(Category.SPMV, 1.0, 0.5)
    table = b.format_table()
    assert "SpMV" in table and "TOTAL" in table


def test_grid_shape_str():
    g = EDISON.square_grid(96, threads=12)
    assert "threads" in str(g)


def test_custom_machine_spec():
    m = MachineSpec(
        name="toy", gamma=1.0, alpha=10.0, beta=0.1,
        alpha_intra=1.0, beta_intra=0.01,
        cores_per_node=4, cores_per_socket=2,
    )
    assert m.comm_params(2, 1) == (1.0, 0.01)
    assert m.comm_params(8, 1) == (10.0, 0.1)
    assert m.compute_time(7.0) == 7.0


# -- collective algorithm dispatch ------------------------------------------------

def test_alltoallv_dispatch_and_bruck_properties():
    # bruck beats pairwise on latency-dominated small messages at scale
    assert C.alltoallv(256, A, B, 1.0, "bruck") < C.alltoallv(256, A, B, 1.0, "pairwise")
    # ... but pays a log-factor on bandwidth-dominated large payloads
    big = 1e9
    assert C.alltoallv_bruck(8, 0.0, B, big) > C.alltoallv_pairwise(8, 0.0, B, big)
    with pytest.raises(ValueError):
        C.alltoallv(4, A, B, 1.0, "carrier-pigeon")


def test_allgather_dispatch():
    assert C.allgather(64, A, B, 10.0, "doubling") < C.allgather(64, A, B, 10.0, "ring")
    # equal bandwidth term: at alpha=0 the two coincide
    assert C.allgather(64, 0.0, B, 10.0, "doubling") == pytest.approx(
        C.allgather(64, 0.0, B, 10.0, "ring")
    )
    with pytest.raises(ValueError):
        C.allgather(4, A, B, 1.0, "semaphore-flags")


def test_single_process_dispatched_collectives_free():
    for algo in ("bruck", "pairwise"):
        assert C.alltoallv(1, A, B, 100.0, algo) == 0.0
    for algo in ("doubling", "ring"):
        assert C.allgather(1, A, B, 100.0, algo) == 0.0
