"""Property-based tests for the distributed layer: scatter/gather and SpMV
must agree with their serial counterparts for arbitrary matrices and grids."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.distmat.distvec import DistDenseVec, DistVertexFrontier
from repro.distmat.grid import ProcGrid
from repro.distmat.ops import direction_edge_counts, route, spmv, spmv_bottomup
from repro.distmat.spmat import DistSparseMatrix
from repro.runtime import spmd
from repro.sparse import COO, CSC, SR_MIN_PARENT, VertexFrontier
from repro.sparse.spvec import NULL

GRIDS = [(1, 1), (1, 3), (2, 2), (3, 2)]


@st.composite
def coo_and_grid(draw):
    n1 = draw(st.integers(1, 25))
    n2 = draw(st.integers(1, 25))
    nnz = draw(st.integers(0, 80))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    coo = COO(n1, n2, rng.integers(0, n1, nnz), rng.integers(0, n2, nnz))
    pr, pc = draw(st.sampled_from(GRIDS))
    return coo, pr, pc


@settings(max_examples=15, deadline=None)
@given(coo_and_grid())
def test_scatter_gather_identity(args):
    coo, pr, pc = args

    def main(comm):
        grid = ProcGrid(comm, pr, pc)
        A = DistSparseMatrix.scatter_from_root(grid, coo if comm.rank == 0 else None)
        back = A.gather_to_root()
        if comm.rank == 0:
            return back == coo and A.global_nnz() == coo.nnz
        A.global_nnz()  # keep the collective schedule aligned
        return True

    assert all(spmd(pr * pc, main).values)


@settings(max_examples=15, deadline=None)
@given(coo_and_grid(), st.data())
def test_distributed_spmv_equals_serial(args, data):
    coo, pr, pc = args
    k = data.draw(st.integers(0, coo.ncols))
    fidx = np.array(sorted(data.draw(
        st.lists(st.integers(0, coo.ncols - 1), unique=True, max_size=k)
    )), dtype=np.int64)
    serial = CSC.from_coo(coo).spmv_frontier(
        VertexFrontier.roots_of_self(coo.ncols, fidx), SR_MIN_PARENT
    )

    def main(comm):
        grid = ProcGrid(comm, pr, pc)
        A = DistSparseMatrix.scatter_from_root(grid, coo if comm.rank == 0 else None)
        probe = DistDenseVec(grid, coo.ncols, "col")
        mine = fidx[(fidx >= probe.lo) & (fidx < probe.hi)]
        fc = DistVertexFrontier(grid, coo.ncols, "col", mine, mine, mine)
        fr = spmv(A, fc, SR_MIN_PARENT)
        return fr.to_global_arrays()

    gi, gp, gr = spmd(pr * pc, main)[0]
    assert np.array_equal(gi, serial.idx)
    assert np.array_equal(gp, serial.parent)
    assert np.array_equal(gr, serial.root)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 6), st.integers(0, 30), st.integers(0, 10_000))
def test_route_conserves_and_delivers(p, n, seed):
    """Routing arbitrary (dest, value) pairs loses nothing and delivers each
    value to exactly its destination."""
    rng = np.random.default_rng(seed)
    dests = [rng.integers(0, p, n) for _ in range(p)]
    values = [rng.integers(0, 1000, n) for _ in range(p)]

    def main(comm):
        (got,) = route(comm, dests[comm.rank], values[comm.rank])
        return sorted(got.tolist())

    res = spmd(p, main)
    for r in range(p):
        expected = sorted(
            int(v) for src in range(p)
            for v, d in zip(values[src], dests[src]) if d == r
        )
        assert res[r] == expected


@st.composite
def coo_grid_and_state(draw):
    """A random matrix, grid shape, frontier and visited-state vector."""
    coo, pr, pc = draw(coo_and_grid())
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    k = draw(st.integers(0, coo.ncols))
    fidx = np.sort(rng.choice(coo.ncols, size=min(k, coo.ncols), replace=False))
    # arbitrary partial visited state: ~half the rows already have parents
    pi = np.where(rng.random(coo.nrows) < 0.5, np.int64(0), np.int64(NULL))
    return coo, pr, pc, fidx.astype(np.int64), pi


@settings(max_examples=15, deadline=None)
@given(coo_grid_and_state())
def test_distributed_bottomup_equals_filtered_topdown(args):
    """spmv_bottomup == serial SpMV restricted to unvisited rows, for any
    visited state — the invariant behind the direction switch."""
    coo, pr, pc, fidx, pi = args
    serial = CSC.from_coo(coo).spmv_frontier(
        VertexFrontier.roots_of_self(coo.ncols, fidx), SR_MIN_PARENT
    )
    keep = pi[serial.idx] == NULL
    want = serial.idx[keep], serial.parent[keep], serial.root[keep]

    def main(comm):
        grid = ProcGrid(comm, pr, pc)
        A = DistSparseMatrix.scatter_from_root(grid, coo if comm.rank == 0 else None)
        pi_r = DistDenseVec.from_global(grid, pi, "row")
        probe = DistDenseVec(grid, coo.ncols, "col")
        mine = fidx[(fidx >= probe.lo) & (fidx < probe.hi)]
        fc = DistVertexFrontier(grid, coo.ncols, "col", mine, mine, mine)
        fr = spmv_bottomup(A, fc, pi_r, SR_MIN_PARENT)
        return fr.to_global_arrays()

    gi, gp, gr = spmd(pr * pc, main)[0]
    assert np.array_equal(gi, want[0])
    assert np.array_equal(gp, want[1])
    assert np.array_equal(gr, want[2])


@settings(max_examples=15, deadline=None)
@given(coo_grid_and_state())
def test_direction_edge_counts_match_serial(args):
    """The switch rule's allreduced counts equal the serial quantities, and
    every rank sees the same pair."""
    coo, pr, pc, fidx, pi = args
    a = CSC.from_coo(coo)
    want_td = a.spmv_count(VertexFrontier.roots_of_self(coo.ncols, fidx))
    want_bu = int(a.row_degrees()[pi == NULL].sum())

    def main(comm):
        grid = ProcGrid(comm, pr, pc)
        A = DistSparseMatrix.scatter_from_root(grid, coo if comm.rank == 0 else None)
        pi_r = DistDenseVec.from_global(grid, pi, "row")
        probe = DistDenseVec(grid, coo.ncols, "col")
        mine = fidx[(fidx >= probe.lo) & (fidx < probe.hi)]
        fc = DistVertexFrontier(grid, coo.ncols, "col", mine, mine, mine)
        counts = direction_edge_counts(A, fc, pi_r)
        # the cache is collective-on-first-call: a second read is local
        assert A.degree_slices() is A.degree_slices()
        return counts

    res = spmd(pr * pc, main)
    assert all(r == (want_td, want_bu) for r in res.values)
