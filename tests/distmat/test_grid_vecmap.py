"""Process grid and distribution maps."""

import numpy as np
import pytest

from repro.distmat.vecmap import BlockMap, VecMap
from repro.distmat.grid import ProcGrid
from repro.runtime import spmd


# -- BlockMap ---------------------------------------------------------------------

def test_blockmap_partitions_range():
    bm = BlockMap(10, 3)  # blocks of 4: [0,4) [4,8) [8,10)
    assert [bm.range(p) for p in range(3)] == [(0, 4), (4, 8), (8, 10)]
    assert sum(bm.size(p) for p in range(3)) == 10


def test_blockmap_owner_matches_ranges():
    bm = BlockMap(23, 5)
    for g in range(23):
        p = bm.owner(g)
        lo, hi = bm.range(p)
        assert lo <= g < hi


def test_blockmap_vectorized_owner():
    bm = BlockMap(100, 7)
    g = np.arange(100)
    owners = bm.owner(g)
    assert owners.min() >= 0 and owners.max() < 7


def test_blockmap_more_parts_than_items():
    bm = BlockMap(3, 8)
    sizes = [bm.size(p) for p in range(8)]
    assert sum(sizes) == 3
    assert bm.owner(2) < 8


def test_blockmap_validation():
    with pytest.raises(ValueError):
        BlockMap(5, 0)


# -- VecMap -----------------------------------------------------------------------

@pytest.mark.parametrize("n,blocks,subs", [(100, 4, 3), (17, 3, 5), (5, 2, 2), (64, 1, 1)])
def test_vecmap_ranges_partition_the_vector(n, blocks, subs):
    vm = VecMap(n, blocks, subs)
    covered = np.zeros(n, dtype=int)
    for b in range(blocks):
        for s in range(subs):
            lo, hi = vm.local_range(s, b)
            covered[lo:hi] += 1
    assert (covered == 1).all()


@pytest.mark.parametrize("n,blocks,subs", [(100, 4, 3), (17, 3, 5), (5, 2, 2)])
def test_vecmap_owner_consistent_with_ranges(n, blocks, subs):
    vm = VecMap(n, blocks, subs)
    g = np.arange(n)
    sub, block = vm.owner(g)
    for gi, s, b in zip(g, sub, block):
        lo, hi = vm.local_range(int(s), int(b))
        assert lo <= gi < hi


# -- ProcGrid ---------------------------------------------------------------------

def test_grid_coordinates_and_subcomms():
    def main(comm):
        grid = ProcGrid(comm, 2, 3)
        assert grid.rank_of(grid.i, grid.j) == comm.rank
        # row communicator spans my grid row
        members = grid.rowcomm.allgather(comm.rank)
        assert members == [grid.i * 3 + j for j in range(3)]
        # column communicator spans my grid column
        members = grid.colcomm.allgather(comm.rank)
        assert members == [i * 3 + grid.j for i in range(2)]
        return (grid.i, grid.j)

    res = spmd(6, main)
    assert res.values == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]


def test_grid_size_mismatch():
    def main(comm):
        ProcGrid(comm, 2, 2)

    with pytest.raises(ValueError):
        spmd(6, main, timeout=5.0)
