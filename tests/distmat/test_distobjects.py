"""Distributed vectors/matrices: scatter, locality, round trips, SpMV."""

import numpy as np
import pytest

from repro.distmat.distvec import DistDenseVec, DistVertexFrontier
from repro.distmat.grid import ProcGrid
from repro.distmat.ops import allgather_values, invert_route, route, spmv
from repro.distmat.spmat import DistSparseMatrix
from repro.runtime import spmd
from repro.sparse import COO, CSC, SR_MIN_PARENT, SR_MAX_PARENT, VertexFrontier
from repro.sparse.spvec import NULL


def random_coo(n1, n2, m, seed):
    rng = np.random.default_rng(seed)
    return COO(n1, n2, rng.integers(0, n1, m), rng.integers(0, n2, m))


# -- DistDenseVec -----------------------------------------------------------------

def test_dense_vec_round_trip():
    arr = np.arange(37, dtype=np.int64) * 3

    def main(comm):
        grid = ProcGrid(comm, 2, 2)
        v = DistDenseVec.from_global(grid, arr, "col")
        assert v.hi - v.lo == v.local.size
        return v.to_global().tolist()

    res = spmd(4, main)
    for out in res:
        assert out == arr.tolist()


def test_dense_vec_owner_covers_all_ranks_exactly():
    def main(comm):
        grid = ProcGrid(comm, 2, 3)
        v = DistDenseVec(grid, 50, "row")
        owners = v.owner_of(np.arange(50))
        mine = np.flatnonzero(owners == comm.rank)
        assert (mine >= v.lo).all() and (mine < v.hi).all()
        assert mine.size == v.hi - v.lo
        return int(mine.size)

    res = spmd(6, main)
    assert sum(res.values) == 50


def test_dense_vec_local_get_set():
    def main(comm):
        grid = ProcGrid(comm, 1, 2)
        v = DistDenseVec(grid, 10, "col")
        mine = np.arange(v.lo, v.hi)
        v.set_local(mine, mine * 7)
        assert np.array_equal(v.get_local(mine), mine * 7)
        return v.to_global().tolist()

    res = spmd(2, main)
    assert res[0] == [i * 7 for i in range(10)]


def test_remote_location_round_trip():
    def main(comm):
        grid = ProcGrid(comm, 2, 2)
        v = DistDenseVec(grid, 29, "row")
        mine = np.arange(v.lo, v.hi)
        v.set_local(mine, mine + 100)
        comm.barrier()
        # every rank resolves every index and the (rank, offset) must agree
        # with the owner map
        for g in range(29):
            rank, off = v.remote_location(g)
            assert rank == int(v.owner_of(np.array([g]))[0])
            assert 0 <= off
        return None

    spmd(4, main)


# -- DistVertexFrontier --------------------------------------------------------------

def test_frontier_rejects_out_of_range_entries():
    def main(comm):
        grid = ProcGrid(comm, 1, 2)
        # global idx 0 belongs to rank 0; rank 1 claiming it must fail
        if comm.rank == 1:
            with pytest.raises(ValueError):
                DistVertexFrontier(grid, 10, "col", np.array([0]), np.array([0]), np.array([0]))
        return None

    spmd(2, main)


def test_frontier_global_nnz_and_gather():
    def main(comm):
        grid = ProcGrid(comm, 1, 2)
        v = DistDenseVec(grid, 10, "col")
        idx = np.arange(v.lo, v.hi, 2)
        f = DistVertexFrontier(grid, 10, "col", idx, idx, idx)
        assert f.global_nnz() == 6  # ranks own [0,5) and [5,10): 0,2,4 + 5,7,9
        gi, gp, gr = f.to_global_arrays()
        return gi.tolist()

    res = spmd(2, main)
    assert res[0] == [0, 2, 4, 5, 7, 9]


# -- route / invert_route / allgather_values --------------------------------------------

def test_route_delivers_by_destination():
    def main(comm):
        data = np.arange(4, dtype=np.int64) + 10 * comm.rank
        dest = np.arange(4, dtype=np.int64) % comm.size
        (got,) = route(comm, dest, data)
        # rank r receives items with index % size == r from every rank
        expected = sorted(x for src in range(comm.size) for x in range(10 * src, 10 * src + 4) if x % 10 % comm.size == comm.rank)
        return sorted(got.tolist()) == expected

    res = spmd(4, main)
    assert all(res.values)


def test_invert_route_targets_value_owner():
    def main(comm):
        grid = ProcGrid(comm, 2, 2)
        target_vec = DistDenseVec(grid, 20, "col")
        # every rank sends (target=rank-local pattern, value)
        targets = np.array([comm.rank * 5 % 20, (comm.rank * 5 + 3) % 20], dtype=np.int64)
        values = targets * 2
        t, v = invert_route(grid, targets, values, target_vec)
        assert (t >= target_vec.lo).all() and (t < target_vec.hi).all() if t.size else True
        assert np.array_equal(v, t * 2)
        return t.size

    res = spmd(4, main)
    assert sum(res.values) == 8


def test_allgather_values():
    def main(comm):
        vals = np.array([comm.rank, comm.rank + 100], dtype=np.int64)
        got = allgather_values(comm, vals)
        return sorted(got.tolist())

    res = spmd(3, main)
    assert res[0] == [0, 1, 2, 100, 101, 102]


# -- DistSparseMatrix --------------------------------------------------------------

@pytest.mark.parametrize("pr,pc", [(1, 1), (2, 2), (2, 3), (3, 2)])
def test_scatter_gather_round_trip(pr, pc):
    coo = random_coo(23, 31, 150, 5)

    def main(comm):
        grid = ProcGrid(comm, pr, pc)
        A = DistSparseMatrix.scatter_from_root(grid, coo if comm.rank == 0 else None)
        assert A.global_nnz() == coo.nnz
        back = A.gather_to_root()
        if comm.rank == 0:
            return back == coo
        return True

    res = spmd(pr * pc, main)
    assert all(res.values)


def test_blocks_hold_only_local_indices():
    coo = random_coo(20, 20, 100, 7)

    def main(comm):
        grid = ProcGrid(comm, 2, 2)
        A = DistSparseMatrix.scatter_from_root(grid, coo if comm.rank == 0 else None)
        blk = A.block
        assert blk.nrows == A.row_hi - A.row_lo
        assert blk.ncols == A.col_hi - A.col_lo
        if blk.nnz:
            assert blk.ir.max() < blk.nrows
            assert blk.jc.max() < blk.ncols
        return blk.nnz

    res = spmd(4, main)
    assert sum(res.values) == coo.nnz


# -- distributed SpMV ---------------------------------------------------------------

@pytest.mark.parametrize("pr,pc", [(1, 1), (2, 2), (3, 3), (2, 3)])
@pytest.mark.parametrize("sr", [SR_MIN_PARENT, SR_MAX_PARENT])
def test_distributed_spmv_matches_serial(pr, pc, sr):
    coo = random_coo(40, 50, 300, 11)
    serial = CSC.from_coo(coo)
    fidx = np.unique(np.random.default_rng(3).integers(0, 50, 15))
    expected = serial.spmv_frontier(VertexFrontier.roots_of_self(50, fidx), sr)

    def main(comm):
        grid = ProcGrid(comm, pr, pc)
        A = DistSparseMatrix.scatter_from_root(grid, coo if comm.rank == 0 else None)
        # build the distributed frontier: each rank takes its slice
        fvec = DistDenseVec(grid, 50, "col")
        mine = fidx[(fidx >= fvec.lo) & (fidx < fvec.hi)]
        fc = DistVertexFrontier(grid, 50, "col", mine, mine, mine)
        fr = spmv(A, fc, sr)
        return fr.to_global_arrays()

    res = spmd(pr * pc, main)
    gi, gp, gr = res[0]
    assert np.array_equal(gi, expected.idx)
    assert np.array_equal(gp, expected.parent)
    assert np.array_equal(gr, expected.root)


def test_spmv_empty_frontier():
    coo = random_coo(10, 10, 40, 1)

    def main(comm):
        grid = ProcGrid(comm, 2, 2)
        A = DistSparseMatrix.scatter_from_root(grid, coo if comm.rank == 0 else None)
        fc = DistVertexFrontier(grid, 10, "col")
        fr = spmv(A, fc)
        return fr.local_nnz

    res = spmd(4, main)
    assert sum(res.values) == 0


def test_spmv_rejects_row_frontier():
    coo = random_coo(10, 10, 40, 1)

    def main(comm):
        grid = ProcGrid(comm, 1, 1)
        A = DistSparseMatrix.scatter_from_root(grid, coo)
        bad = DistVertexFrontier(grid, 10, "row")
        spmv(A, bad)

    with pytest.raises(ValueError):
        spmd(1, main, timeout=10.0)
