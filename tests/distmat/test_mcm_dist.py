"""Integration: the full SPMD MCM-DIST against the serial oracle."""

import numpy as np
import pytest

from repro.matching.mcm_dist import run_mcm_dist
from repro.matching.validate import cardinality, is_valid_matching, verify_maximum
from repro.sparse import COO, CSC

from ..matching.conftest import scipy_optimum


def random_coo(n1, n2, m, seed):
    rng = np.random.default_rng(seed)
    return COO(n1, n2, rng.integers(0, n1, m), rng.integers(0, n2, m))


@pytest.mark.parametrize("pr,pc", [(1, 1), (1, 2), (2, 2), (2, 3), (3, 3)])
def test_mcm_dist_optimal_on_grids(pr, pc):
    coo = random_coo(40, 45, 260, pr * 10 + pc)
    a = CSC.from_coo(coo)
    mate_r, mate_c, stats = run_mcm_dist(coo, pr, pc)
    assert is_valid_matching(a, mate_r, mate_c)
    assert cardinality(mate_r) == scipy_optimum(a)
    assert verify_maximum(a, mate_r, mate_c)
    assert stats.final_cardinality == cardinality(mate_r)
    assert stats.initial_cardinality > 0  # greedy init found something


@pytest.mark.parametrize("augment", ["level", "path", "auto"])
def test_mcm_dist_augment_variants(augment):
    coo = random_coo(35, 35, 200, 77)
    a = CSC.from_coo(coo)
    mate_r, mate_c, stats = run_mcm_dist(coo, 2, 2, augment=augment)
    assert cardinality(mate_r) == scipy_optimum(a)
    if augment == "level":
        assert stats.augment_path_calls == 0
    if augment == "path":
        assert stats.augment_level_calls == 0


def test_mcm_dist_no_init():
    coo = random_coo(30, 30, 150, 5)
    a = CSC.from_coo(coo)
    mate_r, mate_c, stats = run_mcm_dist(coo, 2, 2, init="none")
    assert stats.initial_cardinality == 0
    assert cardinality(mate_r) == scipy_optimum(a)


def test_mcm_dist_prune_off_same_cardinality():
    coo = random_coo(40, 40, 220, 13)
    a = CSC.from_coo(coo)
    on = run_mcm_dist(coo, 2, 2, prune=True)
    off = run_mcm_dist(coo, 2, 2, prune=False)
    assert cardinality(on[0]) == cardinality(off[0]) == scipy_optimum(a)


def test_mcm_dist_matches_serial_matching_exactly():
    """With the deterministic minParent semiring and no initializer, the
    distributed run must augment along the same trees as the serial
    matrix-algebra implementation and produce the SAME mate vectors."""
    from repro.matching import ms_bfs_mcm

    coo = random_coo(30, 32, 180, 21)
    a = CSC.from_coo(coo)
    s_r, s_c, _ = ms_bfs_mcm(a, augment_mode="level")
    d_r, d_c, _ = run_mcm_dist(coo, 2, 2, init="none", augment="level")
    assert np.array_equal(s_r, d_r)
    assert np.array_equal(s_c, d_c)


def test_mcm_dist_rectangular_and_sparse_corner_cases():
    for coo in [
        random_coo(5, 60, 90, 1),
        random_coo(60, 5, 90, 2),
        COO.from_edges(3, 3, [(0, 0), (1, 1), (2, 2)]),
        COO.empty(4, 4),
    ]:
        a = CSC.from_coo(coo)
        mate_r, mate_c, _ = run_mcm_dist(coo, 2, 2)
        assert is_valid_matching(a, mate_r, mate_c)
        assert cardinality(mate_r) == scipy_optimum(a)


def test_mcm_dist_structured_suite_graph():
    """End-to-end on a road-like mesh stand-in (long diameter)."""
    from repro.graphs import generators as G

    coo = G.mesh2d(8, drop=0.1, seed=3)
    a = CSC.from_coo(coo)
    mate_r, mate_c, stats = run_mcm_dist(coo, 2, 2)
    assert cardinality(mate_r) == scipy_optimum(a)
    assert stats.phases >= 1


def test_mcm_dist_rejects_bad_init():
    coo = random_coo(10, 10, 30, 0)
    with pytest.raises(ValueError):
        run_mcm_dist(coo, 1, 1, init="mindegree-not-implemented")


@pytest.mark.parametrize("pr,pc", [(1, 1), (2, 2), (2, 3)])
def test_mcm_dist_mindegree_init(pr, pc):
    """The distributed dynamic-mindegree initializer must produce a valid
    partial matching and let the MCM phase finish at the optimum."""
    coo = random_coo(45, 40, 240, pr * 31 + pc)
    a = CSC.from_coo(coo)
    mate_r, mate_c, stats = run_mcm_dist(coo, pr, pc, init="mindegree")
    assert is_valid_matching(a, mate_r, mate_c)
    assert cardinality(mate_r) == scipy_optimum(a)
    assert stats.initial_cardinality > 0
    assert stats.final_cardinality >= stats.initial_cardinality


def test_mcm_dist_mindegree_quality_close_to_serial():
    """The distributed mindegree initializer should land within a few
    percent of the serial round-synchronous mindegree cardinality."""
    from repro.matching import mindegree_rounds

    coo = random_coo(120, 120, 700, 99)
    a = CSC.from_coo(coo)
    serial = mindegree_rounds(a).cardinality
    _, _, stats = run_mcm_dist(coo, 2, 2, init="mindegree")
    assert stats.initial_cardinality >= int(0.9 * serial)


@pytest.mark.parametrize("pr,pc", [(1, 1), (2, 2), (2, 3)])
def test_mcm_dist_karp_sipser_init(pr, pc):
    coo = random_coo(45, 45, 220, pr * 17 + pc)
    a = CSC.from_coo(coo)
    mate_r, mate_c, stats = run_mcm_dist(coo, pr, pc, init="karp-sipser")
    assert is_valid_matching(a, mate_r, mate_c)
    assert cardinality(mate_r) == scipy_optimum(a)
    assert stats.initial_cardinality > 0


def test_mcm_dist_karp_sipser_exact_on_chain():
    """Degree-1 cascades: Karp-Sipser alone is optimal on a path graph."""
    from repro.graphs.generators import long_path

    coo = long_path(24)
    a = CSC.from_coo(coo)
    mate_r, mate_c, stats = run_mcm_dist(coo, 2, 2, init="karp-sipser")
    assert cardinality(mate_r) == scipy_optimum(a)
    # the initializer already reached the optimum on a path
    assert stats.initial_cardinality == stats.final_cardinality


@pytest.mark.parametrize("init", ["greedy", "mindegree", "karp-sipser"])
def test_mcm_dist_all_inits_agree(init):
    coo = random_coo(50, 55, 280, 123)
    a = CSC.from_coo(coo)
    mate_r, _, _ = run_mcm_dist(coo, 2, 2, init=init)
    assert cardinality(mate_r) == scipy_optimum(a)
