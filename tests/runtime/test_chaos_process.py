"""Chaos on the forked-process backend: recovery without resource leaks.

The thread-backend chaos matrix (test_chaos.py) proves the recovery
*logic*; this suite proves the same plans hold when ranks are real OS
processes talking over shared-memory rings — and that every kill/restart
cycle cleans up after itself: no orphan child processes, no leaked
``/dev/shm`` segments, and checkpoints flowing through the file store the
forked ranks share with the parent.
"""

import glob
import multiprocessing

import numpy as np
import pytest

from repro.graphs.rmat import er
from repro.matching.mcm_dist import run_mcm_dist
from repro.matching.validate import cardinality, is_valid_matching
from repro.runtime import FaultPlan, FileCheckpointStore, run_mcm_dist_resilient

SEEDS = [0, 1]
PLANS = {
    "crash": "crash:rank=any,at=phase:every",
    "transient": "transient:p=0.03",
    "delay": "delay:p=0.2",
    "straggler": "straggler:factor=4,rank=any",
    "correlated": "crash:group=row,at=phase:2",
}


def _shm_segments() -> set:
    """Names of this host's live shared-memory ring/window segments."""
    return set(glob.glob("/dev/shm/rx*"))


@pytest.fixture(scope="module")
def graph():
    return er(scale=6, seed=42, edgefactor=8)


@pytest.fixture(scope="module")
def baseline(graph):
    mate_r, mate_c, _ = run_mcm_dist(graph, 2, 2)
    return mate_r, mate_c


@pytest.mark.parametrize("kind", sorted(PLANS))
@pytest.mark.parametrize("seed", SEEDS)
def test_process_backend_chaos_recovers_without_leaks(
    graph, baseline, tmp_path, kind, seed
):
    before_children = {p.pid for p in multiprocessing.active_children()}
    before_shm = _shm_segments()
    plan = FaultPlan.parse(PLANS[kind], seed=seed)
    mate_r, mate_c, stats = run_mcm_dist_resilient(
        graph, 2, 2,
        faults=plan,
        checkpoint_store=FileCheckpointStore(str(tmp_path)),
        max_restarts=30,
        backend="process",
    )
    assert cardinality(mate_r) == cardinality(baseline[0])
    from repro.sparse import CSC
    assert is_valid_matching(CSC.from_coo(graph), mate_r, mate_c)
    if "crash" in PLANS[kind]:
        assert stats.restarts >= 1
        assert stats.checkpoint_words > 0
    else:
        assert stats.restarts == 0
        # non-crash adversity never perturbs the matching itself
        assert np.array_equal(mate_r, baseline[0])
        assert np.array_equal(mate_c, baseline[1])
    # no orphan rank processes, no leaked shared-memory segments
    leaked = {p.pid for p in multiprocessing.active_children()} - before_children
    assert not leaked, f"orphan child processes: {leaked}"
    assert _shm_segments() <= before_shm, (
        f"leaked /dev/shm segments: {_shm_segments() - before_shm}"
    )


def test_process_backend_correlated_crash_matches_thread_backend(graph, tmp_path):
    """One correlated-crash run, both transports: identical recovery
    trajectory, mates, and deterministic model-time ledger."""
    results = {}
    for backend in ("thread", "process"):
        plan = FaultPlan.parse("crash:group=row,at=phase:2", seed=3)
        mate_r, _, stats = run_mcm_dist_resilient(
            graph, 2, 2,
            faults=plan,
            checkpoint_store=FileCheckpointStore(str(tmp_path / backend)),
            max_restarts=30,
            backend=backend,
            init="none",
        )
        results[backend] = (
            mate_r, stats.restarts, stats.restart_spans,
            round(stats.model_seconds, 12), stats.model_phase_ledger,
        )
    t, p = results["thread"], results["process"]
    assert np.array_equal(t[0], p[0])
    assert t[1:] == p[1:]
