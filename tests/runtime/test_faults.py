"""The deterministic fault-injection layer: plans, injector, retries."""

import time

import numpy as np
import pytest

from repro.runtime import (
    CommStats,
    CrashSpec,
    FaultInjector,
    FaultPlan,
    RankKilledError,
    RetryPolicy,
    TransientCommError,
    spmd,
)


# -- plan grammar ------------------------------------------------------------

def test_parse_full_grammar():
    plan = FaultPlan.parse(
        "crash:rank=1,at=collective:5; crash:rank=any,at=phase:every;"
        "transient:send=0.02,rma=0.01; delay:p=0.1",
        seed=42,
    )
    assert plan.seed == 42
    assert plan.crashes == (
        CrashSpec(rank=1, at="collective", n=5),
        CrashSpec(rank=None, at="phase", n=None),
    )
    assert plan.transient_send_p == 0.02
    assert plan.transient_rma_p == 0.01
    assert plan.delay_p == 0.1
    assert "crash" in plan.describe() and "delay" in plan.describe()


def test_parse_transient_p_applies_to_both_categories():
    plan = FaultPlan.parse("transient:p=0.3")
    assert plan.transient_send_p == plan.transient_rma_p == 0.3


@pytest.mark.parametrize("bad", [
    "explode:p=1",                   # unknown clause
    "crash:rank=0,at=barrier:1",     # unknown crash kind
    "crash:rank=0,at=send:every",    # 'every' only for phase crashes
    "crash:rank=0",                  # missing at=
])
def test_parse_rejects_bad_plans(bad):
    with pytest.raises(ValueError):
        FaultPlan.parse(bad)


def test_empty_plan_is_noop():
    plan = FaultPlan.parse("")
    inj = FaultInjector(plan, 2)
    for _ in range(100):
        assert inj.on_send(0) is None
        inj.on_collective(1)
        inj.on_rma(0)
    assert inj.events == [[], []]


# -- injector determinism ----------------------------------------------------

def test_decisions_depend_only_on_seed_rank_and_counter():
    plan = FaultPlan(seed=7, transient_send_p=0.3, delay_p=0.3)

    def stream(rank, n):
        inj = FaultInjector(plan, 4)
        out = []
        for _ in range(n):
            try:
                out.append(("ok", inj.on_send(rank)))
            except TransientCommError:
                out.append(("fail", None))
        return out

    # same rank: identical streams; the other rank's stream is independent
    assert stream(2, 200) == stream(2, 200)
    assert stream(1, 200) != stream(2, 200)
    # a different seed produces a different stream
    other = FaultInjector(FaultPlan(seed=8, transient_send_p=0.3, delay_p=0.3), 4)
    got = []
    for _ in range(200):
        try:
            got.append(("ok", other.on_send(2)))
        except TransientCommError:
            got.append(("fail", None))
    assert got != stream(2, 200)


def test_transient_probability_is_roughly_honored():
    inj = FaultInjector(FaultPlan(seed=0, transient_send_p=0.25), 1)
    fails = 0
    for _ in range(2000):
        try:
            inj.on_send(0)
        except TransientCommError:
            fails += 1
    assert 0.18 < fails / 2000 < 0.32


def test_crash_fires_exactly_at_nth_occurrence_and_disarms():
    plan = FaultPlan(seed=0, crashes=(CrashSpec(rank=1, at="send", n=3),))
    inj = FaultInjector(plan, 2)
    inj.on_send(1)
    inj.on_send(1)
    with pytest.raises(RankKilledError, match="rank 1"):
        inj.on_send(1)
    assert inj.fired_tokens() == {(0, 3)}
    # rank 0 is never affected
    inj2 = FaultInjector(plan, 2)
    for _ in range(10):
        inj2.on_send(0)
    # a restarted incarnation with the token disarmed survives send #3
    inj3 = FaultInjector(plan, 2, disarmed=inj.fired_tokens())
    for _ in range(10):
        inj3.on_send(1)


def test_phase_every_kills_one_seeded_rank_per_boundary():
    plan = FaultPlan(seed=5, crashes=(CrashSpec(rank=None, at="phase", n=None),))

    def victims_for():
        inj = FaultInjector(plan, 4)
        out = {}
        for phase in (1, 2, 3):
            for rank in range(4):
                try:
                    inj.on_phase(rank, phase)
                except RankKilledError:
                    assert phase not in out  # exactly one victim per boundary
                    out[phase] = rank
        return out

    victims = victims_for()
    assert set(victims) == {1, 2, 3}
    assert victims == victims_for()  # seeded choice is reproducible


# -- retry policy ------------------------------------------------------------

def test_retry_policy_backoff_is_capped():
    pol = RetryPolicy(max_retries=10, base_delay=0.001, max_delay=0.004)
    delays = [pol.delay(a) for a in range(1, 11)]
    assert delays[0] == 0.001
    assert delays[1] == 0.002
    assert max(delays) == 0.004
    assert delays == sorted(delays)


def test_transient_send_failures_are_retried_and_counted():
    plan = FaultPlan(seed=3, transient_send_p=0.4)

    def main(comm):
        if comm.rank == 0:
            for i in range(50):
                comm.send(1, i, tag=1)
            return None
        return [comm.recv(0, tag=1) for _ in range(50)]

    res = spmd(2, main, faults=FaultInjector(plan, 2))
    assert res[1] == list(range(50))  # payload order survives retries
    assert res.stats[0].retries > 0
    assert res.stats[0].retries_by_op.get("p2p", 0) == res.stats[0].retries
    # logical message counts are unaffected by retries
    assert res.stats[0].by_op["p2p"] == 50


def test_exhausted_retries_become_permanent():
    plan = FaultPlan(seed=3, transient_send_p=1.0)  # every attempt fails
    inj = FaultInjector(plan, 2, retry=RetryPolicy(max_retries=2, base_delay=0.0, max_delay=0.0))

    def main(comm):
        if comm.rank == 0:
            comm.send(1, "x", tag=1)
        else:
            comm.recv(0, tag=1)

    with pytest.raises(TransientCommError, match="after 2 retries"):
        spmd(2, main, faults=inj, timeout=5.0)


def test_transient_rma_failures_are_retried():
    from repro.runtime import Window

    plan = FaultPlan(seed=1, transient_rma_p=0.4)

    def main(comm):
        win = Window(comm, np.zeros(4, dtype=np.int64))
        win.fence()
        for i in range(20):
            win.accumulate((comm.rank + 1) % comm.size, i % 4, 1)
        win.fence()
        total = int(win.local.sum())
        retries = win.rma_retries
        win.free()
        return total, retries

    res = spmd(2, main, faults=FaultInjector(plan, 2))
    assert [t for t, _ in res.values] == [20, 20]  # all ops landed exactly once
    assert sum(r for _, r in res.values) > 0
    assert any(s.retries_by_op.get("rma_accumulate", 0) > 0 for s in res.stats)


# -- delays / reordering -----------------------------------------------------

def test_delay_preserves_non_overtaking_within_stream():
    """Heavily delayed traffic must still respect MPI ordering per
    (source, tag) stream, and collectives must be unaffected."""
    plan = FaultPlan(seed=9, delay_p=0.8)

    def main(comm):
        if comm.rank == 0:
            for i in range(40):
                comm.send(1, i, tag=5)
            comm.barrier()
            return None
        got = [comm.recv(0, tag=5) for _ in range(40)]
        comm.barrier()
        return got

    res = spmd(2, main, faults=FaultInjector(plan, 2))
    assert res[1] == list(range(40))


def test_delay_can_reorder_across_streams():
    """With two tags in flight, a wildcard receiver may observe a legal
    interleaving different from send order under heavy delay."""
    plan = FaultPlan(seed=2, delay_p=0.9)

    def main(comm):
        if comm.rank == 0:
            for i in range(30):
                comm.send(1, ("a", i), tag=1)
                comm.send(1, ("b", i), tag=2)
            return None
        seen = [comm.recv(0)[0] for _ in range(60)]
        # per-stream order is intact regardless of interleaving
        return seen

    res = spmd(2, main, faults=FaultInjector(plan, 2))
    assert sorted(res[1]) == ["a"] * 30 + ["b"] * 30


def test_collectives_survive_heavy_delay_and_loss():
    plan = FaultPlan(seed=4, transient_send_p=0.15, delay_p=0.5)

    def main(comm):
        x = comm.allreduce(comm.rank + 1)
        parts = comm.allgather(comm.rank * 10)
        comm.barrier()
        return x, parts

    res = spmd(4, main, faults=FaultInjector(plan, 4))
    for x, parts in res.values:
        assert x == 10
        assert parts == [0, 10, 20, 30]


# -- zero-cost when disabled -------------------------------------------------

def test_no_injector_means_no_fault_state():
    def main(comm):
        comm.send((comm.rank + 1) % comm.size, 1, tag=0)
        comm.recv((comm.rank - 1) % comm.size, tag=0)
        return comm.allreduce(1)

    res = spmd(3, main)
    assert res.values == [3, 3, 3]
    assert all(s.retries == 0 and not s.retries_by_op for s in res.stats)


def test_disabled_injection_overhead_is_negligible():
    """The chaos-off hot path adds only `fabric.faults is None` checks."""
    def main(comm):
        for i in range(300):
            comm.send((comm.rank + 1) % comm.size, i, tag=0)
            comm.recv((comm.rank - 1) % comm.size, tag=0)

    t0 = time.perf_counter()
    spmd(2, main)
    base = time.perf_counter() - t0
    assert base < 5.0  # sanity bound; regressions here are order-of-magnitude


def test_fault_events_log_is_deterministic_across_runs():
    """Bit-for-bit: the per-rank injected fault sequences of two runs of
    the same SPMD program under the same (seed, plan) are identical."""
    plan = FaultPlan.parse("transient:p=0.1;delay:p=0.3", seed=123)

    def main(comm):
        for i in range(25):
            comm.send((comm.rank + 1) % comm.size, i, tag=1)
        for _ in range(25):
            comm.recv((comm.rank - 1) % comm.size, tag=1)
        comm.allreduce(comm.rank)
        return None

    inj_a = FaultInjector(plan, 3)
    spmd(3, main, faults=inj_a)
    inj_b = FaultInjector(plan, 3)
    spmd(3, main, faults=inj_b)
    assert inj_a.events == inj_b.events
    assert any(inj_a.events)  # the plan actually injected something
