"""A killed rank must take the whole job down promptly and traceably.

One rank dies mid-call — in every collective, and in a one-sided RMA walk
inside ``augment_path_spmd_rma`` — and the survivors, blocked on traffic the
dead rank will never send, must unblock via the fabric abort well before any
timeout, with the primary exception naming the dead rank.  Plus the
join-backstop diagnostics: a rank hung *outside* the runtime is named
together with its last blocked operation.
"""

import time

import numpy as np
import pytest

from repro.matching.mcm_dist import run_mcm_dist
from repro.runtime import (
    CrashSpec,
    FaultInjector,
    FaultPlan,
    RankKilledError,
    spmd,
)
from repro.sparse import COO

NR, VICTIM = 4, 2

COLLECTIVES = {
    "barrier": lambda c: c.barrier(),
    "bcast": lambda c: c.bcast(c.rank, root=0),
    "gather": lambda c: c.gather(c.rank, root=0),
    "gatherv": lambda c: c.gatherv([c.rank] * (c.rank + 1), root=0),
    "scatter": lambda c: c.scatter(list(range(c.size)) if c.rank == 0 else None, root=0),
    "allgather": lambda c: c.allgather(c.rank),
    "allgatherv": lambda c: c.allgatherv([c.rank] * (c.rank + 1)),
    "alltoall": lambda c: c.alltoall([c.rank] * c.size),
    "alltoallv": lambda c: c.alltoallv([[c.rank]] * c.size),
    "reduce": lambda c: c.reduce(c.rank),
    "allreduce": lambda c: c.allreduce(c.rank),
    "exscan": lambda c: c.exscan(c.rank),
    "scan": lambda c: c.scan(c.rank),
}


@pytest.mark.parametrize("name", sorted(COLLECTIVES))
def test_rank_killed_inside_collective_aborts_survivors(name):
    """The victim dies at its collective-entry fault point; peers blocked
    inside the same collective unwind with CommAbort (suppressed), and the
    caller sees RankKilledError carrying the victim's rank."""
    coll = COLLECTIVES[name]
    plan = FaultPlan(seed=0, crashes=(CrashSpec(rank=VICTIM, at="collective", n=1),))

    def main(comm):
        coll(comm)
        comm.barrier()  # never reached by anyone: the job is dead

    t0 = time.perf_counter()
    with pytest.raises(RankKilledError, match=rf"\[spmd rank {VICTIM}\]") as ei:
        spmd(NR, main, faults=FaultInjector(plan, NR), timeout=30.0)
    elapsed = time.perf_counter() - t0
    assert ei.value.spmd_rank == VICTIM
    assert elapsed < 5.0  # survivors unblocked by the abort, not the timeout


def test_rank_killed_inside_rma_walk_aborts_survivors():
    """Kill the victim at its Nth one-sided op inside the path-augmentation
    RMA walk (Algorithm 4); the closing fences never complete on the
    survivors, so the abort must unwind them."""
    rng = np.random.default_rng(0)
    coo = COO(40, 40, rng.integers(0, 40, 400), rng.integers(0, 40, 400))
    plan = FaultPlan(seed=0, crashes=(CrashSpec(rank=VICTIM, at="rma", n=2),))

    t0 = time.perf_counter()
    with pytest.raises(RankKilledError, match=rf"\[spmd rank {VICTIM}\]") as ei:
        run_mcm_dist(coo, 2, 2, init="none", augment="path",
                     faults=plan, timeout=30.0)
    elapsed = time.perf_counter() - t0
    assert ei.value.spmd_rank == VICTIM
    assert elapsed < 10.0


def test_rank_killed_mid_p2p_aborts_blocked_receiver():
    plan = FaultPlan(seed=0, crashes=(CrashSpec(rank=0, at="send", n=3),))

    def main(comm):
        if comm.rank == 0:
            for i in range(5):
                comm.send(1, i, tag=1)
        else:
            return [comm.recv(0, tag=1) for _ in range(5)]

    with pytest.raises(RankKilledError, match=r"\[spmd rank 0\]"):
        spmd(2, main, faults=FaultInjector(plan, 2), timeout=30.0)


def test_hung_rank_diagnostics_name_rank_and_last_blocked_op():
    """Satellite: the join-backstop TimeoutError must say WHICH rank hung
    and what it was last blocked on inside the runtime."""

    def main(comm):
        if comm.rank == 1:
            comm.recv(0, tag=7)       # records the last blocked operation
            time.sleep(30)            # then hangs outside the runtime
        else:
            comm.send(1, "x", tag=7)

    with pytest.raises(TimeoutError) as ei:
        spmd(2, main, timeout=0.3, join_grace=0.2)
    msg = str(ei.value)
    assert "rank 1" in msg
    assert "recv(source=rank 0, tag=7)" in msg


def test_hung_rank_that_never_blocked_is_reported_as_busy():
    def main(comm):
        if comm.rank == 0:
            time.sleep(30)

    with pytest.raises(TimeoutError) as ei:
        spmd(2, main, timeout=0.3, join_grace=0.2)
    msg = str(ei.value)
    assert "rank 0" in msg
    assert "never blocked in the runtime" in msg
