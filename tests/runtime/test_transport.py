"""Process-transport behavior: backend resolution, rank lifecycle, fault
containment, and the shared-memory plumbing underneath it.

The parity suite (``test_backend_parity``) checks that results match the
thread backend; this file checks the things that only exist on the process
side — forked children, pid-naming on hangs, orphan reaping, and the env /
argument resolution that selects a transport in the first place.
"""

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.runtime import spmd
from repro.runtime.errors import CommError, DeadlockError, RankKilledError
from repro.runtime.executor import resolve_backend


def _no_orphans():
    # every forked rank must be joined or reaped by the time spmd returns
    return [p for p in mp.active_children() if p.name.startswith("spmd-rank")]


# -- backend resolution ------------------------------------------------------

def test_resolve_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_SPMD_BACKEND", "process")
    assert resolve_backend("thread") == "thread"


def test_resolve_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_SPMD_BACKEND", "process")
    assert resolve_backend(None) == "process"
    monkeypatch.delenv("REPRO_SPMD_BACKEND")
    assert resolve_backend(None) == "thread"


def test_resolve_unknown_rejected():
    with pytest.raises(ValueError, match="unknown spmd backend"):
        resolve_backend("mpi")


def test_verify_rejects_explicit_process():
    with pytest.raises(ValueError, match="verify"):
        resolve_backend("process", verify=True)


def test_verify_falls_back_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SPMD_BACKEND", "process")
    assert resolve_backend(None, verify=True) == "thread"


# -- basic process-backend lifecycle -----------------------------------------

def test_process_round_trip_values_and_stats():
    def main(comm):
        total = comm.allreduce(np.array([comm.rank + 1], dtype=np.int64))
        return int(total[0])

    res = spmd(3, main, backend="process", timeout=30)
    assert res.values == [6, 6, 6]
    assert len(res.stats) == 3
    assert all(s.messages_sent > 0 for s in res.stats)
    assert not _no_orphans()


def test_process_sendrecv_and_wildcards():
    def main(comm):
        if comm.rank == 0:
            comm.send(1, {"blob": np.arange(4)}, tag=7)
            return None
        payload, source, tag = comm.recv_with_status()
        return (source, tag, payload["blob"].tolist())

    res = spmd(2, main, backend="process", timeout=30)
    assert res.values[1] == (0, 7, [0, 1, 2, 3])


def test_process_rank_exception_propagates_with_rank_context():
    def main(comm):
        if comm.rank == 2:
            raise RuntimeError("boom on two")
        comm.barrier()

    with pytest.raises(RuntimeError, match=r"\[spmd rank 2\] boom on two"):
        spmd(3, main, backend="process", timeout=15)
    assert not _no_orphans()


def test_process_silent_death_reports_exit_code():
    def main(comm):
        if comm.rank == 1:
            os._exit(9)  # no goodbye message, no result
        comm.barrier()

    with pytest.raises(CommError, match="exit code"):
        spmd(2, main, backend="process", timeout=15)
    assert not _no_orphans()


def test_process_deadlock_detected():
    def main(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=5)  # rank 1 never sends

    with pytest.raises(DeadlockError, match="recv"):
        spmd(2, main, backend="process", timeout=2)
    assert not _no_orphans()


def test_process_hung_rank_named_by_pid():
    def main(comm):
        if comm.rank == 1:
            time.sleep(120)  # ignores the abort, must be reaped
        return comm.rank

    t0 = time.monotonic()
    with pytest.raises(TimeoutError, match=r"\(pid \d+\)"):
        spmd(2, main, backend="process", timeout=2, join_grace=1.0)
    assert time.monotonic() - t0 < 60  # backstop, not the full sleep
    assert not _no_orphans()


def test_process_chaos_kill_reaps_children():
    def main(comm):
        comm.barrier()
        return comm.rank

    with pytest.raises(RankKilledError, match="rank 1"):
        spmd(3, main, backend="process", timeout=15,
             faults="crash:rank=1,at=send:1")
    assert not _no_orphans()


def test_faults_accepts_plan_strings_on_both_backends():
    def main(comm):
        comm.barrier()

    for backend in ("thread", "process"):
        with pytest.raises(RankKilledError):
            spmd(2, main, backend=backend, timeout=15,
                 faults="crash:rank=0,at=send:1")


def test_process_progress_attached_to_error():
    def main(comm):
        comm.fabric.note_progress("phase", comm.rank + 3)
        if comm.rank == 1:
            raise ValueError("died mid-phase")
        comm.barrier()

    with pytest.raises(ValueError) as ei:
        spmd(2, main, backend="process", timeout=15)
    assert getattr(ei.value, "spmd_progress", {}).get("phase", 0) >= 4
