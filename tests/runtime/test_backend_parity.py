"""Cross-backend parity: the process transport must be observationally
identical to the thread transport.

Bit-identical mate vectors and identical merged ``by_alg`` collective
ledgers across the full grid — process grids x inputs x collective
configs.  Any divergence means the shared-memory wire (codec, rings,
matching) changed message content or ordering semantics.
"""

import numpy as np
import pytest

from repro.graphs.rmat import er, g500
from repro.matching.mcm_dist import run_mcm_dist
from repro.runtime.comm import NAIVE_CONFIG, CollectiveConfig

GRIDS = [(1, 1), (2, 2), (3, 3)]
INPUTS = {
    "er6": lambda: er(6, seed=1),
    "rmat6": lambda: g500(6, seed=2),
}
CONFIGS = {
    "engine": CollectiveConfig(),
    "naive": NAIVE_CONFIG,
    "nopack": CollectiveConfig(pack=False),
    "nobitmap": CollectiveConfig(bitmap_frontiers=False),
}


def _run(coo, pr, pc, backend, config):
    mate_r, mate_c, stats = run_mcm_dist(
        coo, pr, pc, backend=backend, comm_config=config, timeout=60,
    )
    return mate_r, mate_c, stats


def _assert_parity(coo, pr, pc, config):
    mr_t, mc_t, st_t = _run(coo, pr, pc, "thread", config)
    mr_p, mc_p, st_p = _run(coo, pr, pc, "process", config)
    np.testing.assert_array_equal(mr_t, mr_p)
    np.testing.assert_array_equal(mc_t, mc_p)
    assert st_t.comm_by_alg == st_p.comm_by_alg


@pytest.mark.parametrize("graph", sorted(INPUTS))
@pytest.mark.parametrize("pr,pc", GRIDS)
def test_grid_parity(graph, pr, pc):
    _assert_parity(INPUTS[graph](), pr, pc, CONFIGS["engine"])


@pytest.mark.parametrize("graph", sorted(INPUTS))
@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_config_parity(graph, config):
    _assert_parity(INPUTS[graph](), 2, 2, CONFIGS[config])


def test_larger_grid_volume_parity():
    """A heavier instance exercising chunked frames and every collective."""
    coo = er(8, seed=1)
    _assert_parity(coo, 3, 3, CONFIGS["engine"])
