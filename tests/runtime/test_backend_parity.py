"""Cross-backend parity: the process transport must be observationally
identical to the thread transport.

Bit-identical mate vectors and identical merged ``by_alg`` collective
ledgers across the full grid — process grids x inputs x collective
configs.  Any divergence means the shared-memory wire (codec, rings,
matching) changed message content or ordering semantics.
"""

import numpy as np
import pytest

from repro.graphs.generators import edge_weights
from repro.graphs.rmat import er, g500
from repro.matching.mcm_dist import run_mcm_dist
from repro.matching.mwm_dist import run_mwm_dist
from repro.runtime.comm import NAIVE_CONFIG, CollectiveConfig

GRIDS = [(1, 1), (2, 2), (3, 3)]
INPUTS = {
    "er6": lambda: er(6, seed=1),
    "rmat6": lambda: g500(6, seed=2),
}
CONFIGS = {
    "engine": CollectiveConfig(),
    "naive": NAIVE_CONFIG,
    "nopack": CollectiveConfig(pack=False),
    "nobitmap": CollectiveConfig(bitmap_frontiers=False),
}


def _run(coo, pr, pc, backend, config):
    mate_r, mate_c, stats = run_mcm_dist(
        coo, pr, pc, backend=backend, comm_config=config, timeout=60,
    )
    return mate_r, mate_c, stats


def _assert_parity(coo, pr, pc, config):
    mr_t, mc_t, st_t = _run(coo, pr, pc, "thread", config)
    mr_p, mc_p, st_p = _run(coo, pr, pc, "process", config)
    np.testing.assert_array_equal(mr_t, mr_p)
    np.testing.assert_array_equal(mc_t, mc_p)
    assert st_t.comm_by_alg == st_p.comm_by_alg


@pytest.mark.parametrize("graph", sorted(INPUTS))
@pytest.mark.parametrize("pr,pc", GRIDS)
def test_grid_parity(graph, pr, pc):
    _assert_parity(INPUTS[graph](), pr, pc, CONFIGS["engine"])


@pytest.mark.parametrize("graph", sorted(INPUTS))
@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_config_parity(graph, config):
    _assert_parity(INPUTS[graph](), 2, 2, CONFIGS[config])


def test_larger_grid_volume_parity():
    """A heavier instance exercising chunked frames and every collective."""
    coo = er(8, seed=1)
    _assert_parity(coo, 3, 3, CONFIGS["engine"])


# -- MWM-DIST: the auction engine over the same transports -------------------


def _mwm_input(name):
    coo = INPUTS[name]()
    return coo, edge_weights(coo, dist="skewed", seed=3)


def _run_mwm(coo, weights, pr, pc, backend, config):
    return run_mwm_dist(
        coo, weights, pr, pc, backend=backend, comm_config=config, timeout=120,
    )


def _assert_mwm_parity(coo, weights, pr, pc, config):
    mr_t, mc_t, st_t = _run_mwm(coo, weights, pr, pc, "thread", config)
    mr_p, mc_p, st_p = _run_mwm(coo, weights, pr, pc, "process", config)
    np.testing.assert_array_equal(mr_t, mr_p)
    np.testing.assert_array_equal(mc_t, mc_p)
    assert st_t.matching_weight == st_p.matching_weight
    assert st_t.auction_rounds == st_p.auction_rounds
    assert st_t.comm_by_alg == st_p.comm_by_alg


@pytest.mark.parametrize("graph", sorted(INPUTS))
@pytest.mark.parametrize("pr,pc", GRIDS)
def test_mwm_grid_parity(graph, pr, pc):
    coo, weights = _mwm_input(graph)
    _assert_mwm_parity(coo, weights, pr, pc, CONFIGS["engine"])


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_mwm_config_parity(config):
    coo, weights = _mwm_input("er6")
    _assert_mwm_parity(coo, weights, 2, 2, CONFIGS[config])


def test_mwm_aggregation_bit_equal():
    """Superstep aggregation changes only the physical frame schedule: the
    auction's mates, weight, rounds and logical ledgers must not move."""
    coo, weights = _mwm_input("rmat6")
    base = run_mwm_dist(coo, weights, 2, 2, timeout=120)
    agg = run_mwm_dist(
        coo, weights, 2, 2,
        comm_config=CollectiveConfig(aggregate=True), timeout=120,
    )
    np.testing.assert_array_equal(base[0], agg[0])
    np.testing.assert_array_equal(base[1], agg[1])
    assert base[2].matching_weight == agg[2].matching_weight
    assert base[2].auction_rounds == agg[2].auction_rounds
    assert base[2].comm_by_alg == agg[2].comm_by_alg


def test_mwm_chaos_recovery_matches_fault_free(tmp_path):
    """Crashes at every ε-phase boundary: the recovered auction must land on
    the exact fault-free mates and weight (prices ride the checkpoint's aux
    slot, so replayed phases restart from the durable duals)."""
    from repro.runtime.checkpoint import FileCheckpointStore
    from repro.runtime.executor import run_mwm_dist_resilient
    from repro.runtime.faults import FaultPlan

    coo, weights = _mwm_input("er6")
    mr_ok, mc_ok, st_ok = run_mwm_dist(coo, weights, 2, 2, timeout=120)
    mr, mc, st = run_mwm_dist_resilient(
        coo, weights, 2, 2,
        faults=FaultPlan.parse("crash:rank=any,at=phase:every", seed=5),
        checkpoint_store=FileCheckpointStore(tmp_path / "ckpt"),
        max_restarts=30,
        timeout=120,
    )
    assert st.restarts >= 1
    np.testing.assert_array_equal(mr_ok, mr)
    np.testing.assert_array_equal(mc_ok, mc)
    assert st.matching_weight == st_ok.matching_weight
