"""Adversity scenario suite: plans, pricing, SLO reports, determinism.

Covers the scenario-engine layers end to end: the extended fault-plan
grammar (stragglers, degraded links, correlated crash groups, superstep
disruption) with :class:`FaultPlanError` diagnostics, the per-edge α-β
link model and its collectives/costsim plumbing, the injector's
deterministic model-time ledger, the ``fault:delay`` trace spans, and the
closed-loop :func:`run_scenario` driver whose SLO reports must reproduce
bit-for-bit across runs and across the thread/process backends.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.rmat import er
from repro.matching.mcm_dist import run_mcm_dist
from repro.perfmodel import EDISON, LinkModel
from repro.perfmodel.collectives import degraded_params
from repro.runtime import (
    SCENARIOS,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    run_mcm_dist_resilient,
)
from repro.runtime.scenarios import _ledger_at, run_scenario

# ---------------------------------------------------------------------------
# plan grammar: parse, describe, and FaultPlanError diagnostics
# ---------------------------------------------------------------------------

FULL_PLAN = (
    "crash:group=row,at=phase:2;transient:p=0.02,rma=0.01;delay:p=0.1;"
    "straggler:factor=8,rank=any,sleep=0.001;"
    "link:src=0,dst=*,alpha=6,beta=3;disrupt:p=0.4,factor=6"
)


def test_full_grammar_describe_round_trips():
    plan = FaultPlan.parse(FULL_PLAN, seed=11)
    again = FaultPlan.parse(plan.describe(), seed=11)
    assert again == plan
    assert plan.straggling
    assert plan.links and plan.disrupt_p == 0.4


@pytest.mark.parametrize("bad, token", [
    ("crash:rank=two,at=phase:1", "two"),
    ("crash:group=diagonal,at=phase:1", "diagonal"),
    ("crash:rank=1,group=row,at=phase:1", "group"),
    ("straggler:rank=3", "factor"),
    ("straggler:factor=0.5", "0.5"),
    ("link:src=0,alpha=2", "dst"),
    ("link:src=0,dst=1,alpha=0.9", "0.9"),
    ("disrupt:p=0.5,factor=0.2", "0.2"),
    ("transient:q=0.5", "q"),
    ("bogus:p=1", "bogus"),
])
def test_malformed_plans_raise_faultplanerror_naming_the_token(bad, token):
    with pytest.raises(FaultPlanError) as ei:
        FaultPlan.parse(bad)
    assert token in str(ei.value)


def test_faultplanerror_is_a_valueerror():
    """Pre-existing callers catch ValueError; the richer type must still
    land in those handlers."""
    assert issubclass(FaultPlanError, ValueError)
    with pytest.raises(ValueError):
        FaultPlan.parse("crash:at=phase")


def test_group_plan_requires_a_grid_shape():
    plan = FaultPlan.parse("crash:group=col,at=phase:1", seed=0)
    with pytest.raises(FaultPlanError, match="grid"):
        FaultInjector(plan, 4)
    FaultInjector(plan, 4, grid=(2, 2))  # with a grid it arms fine


# ---------------------------------------------------------------------------
# link model + degraded collective parameters
# ---------------------------------------------------------------------------


def test_link_model_factors_and_wildcards():
    lm = LinkModel(degraded=((0, -1, 6.0, 3.0), (-1, 3, 2.0, 2.0)))
    assert lm.damaged
    assert lm.factors(0, 1) == (6.0, 3.0)
    # rank 0 -> rank 3 matches both entries: worst factor per term wins
    assert lm.factors(0, 3) == (6.0, 3.0)
    assert lm.factors(1, 2) == (1.0, 1.0)
    healthy = lm.message_seconds(1, 2, 10)
    assert healthy == pytest.approx(EDISON.alpha + EDISON.beta * 10)
    assert lm.message_seconds(0, 1, 10) == pytest.approx(
        6.0 * EDISON.alpha + 3.0 * EDISON.beta * 10
    )


def test_worst_factors_respects_the_group():
    lm = LinkModel(degraded=((0, 1, 9.0, 9.0),))
    assert lm.worst_factors() == (9.0, 9.0)
    # a group without rank 0 or 1 as endpoints never crosses the bad edge
    assert lm.worst_factors(group=(2, 3)) == (1.0, 1.0)
    a, b = degraded_params(EDISON.alpha, EDISON.beta, lm, group=(0, 1))
    assert (a, b) == (9.0 * EDISON.alpha, 9.0 * EDISON.beta)
    # no link model: parameters pass through untouched
    assert degraded_params(1.0, 2.0) == (1.0, 2.0)


def test_degraded_links_inflate_costsim_estimates():
    from repro.simulate.costsim import price, record

    trace = record(er(scale=7, seed=3, edgefactor=8))
    healthy = price(trace, 48, 12)
    damaged = price(trace, 48, 12,
                    links=LinkModel(degraded=((0, -1, 8.0, 4.0),)))
    assert damaged.seconds > healthy.seconds


# ---------------------------------------------------------------------------
# injector: correlated groups, stragglers, disruption, pricing
# ---------------------------------------------------------------------------


def test_group_members_row_col_clique_are_seeded_and_deterministic():
    plan_row = FaultPlan.parse("crash:group=row,at=phase:1", seed=5)
    plan_col = FaultPlan.parse("crash:group=col,at=phase:1", seed=5)
    plan_clq = FaultPlan.parse("crash:group=clique:3,at=phase:1", seed=5)
    for plan in (plan_row, plan_col, plan_clq):
        inj_a = FaultInjector(plan, 6, grid=(2, 3))
        inj_b = FaultInjector(plan, 6, grid=(2, 3))
        spec = plan.crashes[0]
        members = inj_a._group_members(spec, 0, 1)
        assert members == inj_b._group_members(spec, 0, 1)
        assert all(0 <= r < 6 for r in members)
    row = FaultInjector(plan_row, 6, grid=(2, 3))._group_members(
        plan_row.crashes[0], 0, 1
    )
    assert len(row) == 3 and len({r // 3 for r in row}) == 1
    col = FaultInjector(plan_col, 6, grid=(2, 3))._group_members(
        plan_col.crashes[0], 0, 1
    )
    assert len(col) == 2 and len({r % 3 for r in col}) == 1
    clq = FaultInjector(plan_clq, 6, grid=(2, 3))._group_members(
        plan_clq.crashes[0], 0, 1
    )
    assert len(clq) == 3 and len(set(clq)) == 3


def test_straggler_and_disruption_inflate_the_model_factor():
    plan = FaultPlan.parse("straggler:factor=8,rank=1;disrupt:p=1,factor=4", seed=0)
    inj = FaultInjector(plan, 4)
    inj._counts[1]["phase"] = 3
    inj._counts[0]["phase"] = 3
    # every phase is disrupted (p=1); rank 1 additionally straggles
    assert inj.model_factor(1) == pytest.approx(32.0)
    assert inj.model_factor(0) == pytest.approx(4.0)
    assert inj.straggler_of(3) == 1
    assert inj.phase_disrupted(3)


def test_price_message_accumulates_the_link_inflated_ledger():
    plan = FaultPlan.parse("link:src=0,dst=1,alpha=2,beta=2", seed=0)
    inj = FaultInjector(plan, 2)
    healthy = EDISON.alpha + EDISON.beta * 10
    assert inj.price_message(1, 0, 10) == pytest.approx(healthy)
    assert inj.price_message(0, 1, 10) == pytest.approx(2 * healthy)
    assert inj.model_seconds == [
        pytest.approx(2 * healthy), pytest.approx(healthy)
    ]


def test_ledger_at_interpolates_the_phase_profile():
    profile = {1: 0.0, 2: 5.0, 3: 9.0}
    assert _ledger_at(profile, 0) == 0.0
    assert _ledger_at(profile, 2) == 5.0
    assert _ledger_at(profile, 4) == 9.0  # past the last boundary: clamp
    assert _ledger_at(None, 2) == 0.0


# ---------------------------------------------------------------------------
# fault:delay spans feed the trace-report adversity rollup
# ---------------------------------------------------------------------------


def test_straggler_sleeps_are_traced_and_attributed():
    from repro.simulate.critpath import analyze, format_report

    coo = er(scale=5, seed=9, edgefactor=8)
    plan = FaultPlan.parse("straggler:factor=2,rank=1,sleep=0.002", seed=3)
    _, _, stats = run_mcm_dist_resilient(coo, 2, 2, faults=plan, trace="ticks")
    spans = [
        sp for sp in stats.trace.all_spans()
        if sp.cat == "fault" and sp.name == "fault:delay"
    ]
    assert spans, "no fault:delay spans traced for a sleeping straggler"
    assert {sp.args["category"] for sp in spans} == {"straggler"}
    assert all(sp.args["rank"] == 1 and sp.args["seconds"] == 0.002
               for sp in spans)
    rep = analyze(stats.trace)
    roll = rep["adversity"]["straggler"]
    assert roll["count"] == len(spans)
    assert roll["seconds"] == pytest.approx(0.002 * len(spans))
    assert roll["by_rank"] == {1: pytest.approx(0.002 * len(spans))}
    # the per-event fault listing must not be flooded by delay markers
    assert not any(f["name"] == "fault:delay" for f in rep["faults"])
    assert "injected adversity time:" in format_report(rep)


# ---------------------------------------------------------------------------
# the closed-loop scenario driver
# ---------------------------------------------------------------------------

REQUIRED_SCENARIOS = {"baseline", "straggler", "degraded-links", "correlated-crash"}


def test_registry_holds_the_required_scenarios_with_parsable_plans():
    assert REQUIRED_SCENARIOS <= set(SCENARIOS)
    for sc in SCENARIOS.values():
        plan = FaultPlan.parse(sc.plan, seed=sc.seed)
        assert FaultPlan.parse(plan.describe(), seed=sc.seed) == plan


def test_unknown_scenario_is_rejected_by_name():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_scenario("no-such-scenario")


def _strip_wall(report: dict) -> dict:
    return {k: v for k, v in report.items() if not k.startswith("seconds")}


@pytest.mark.parametrize("name", ["straggler", "correlated-crash"])
def test_scenario_reports_reproduce_bit_for_bit(name):
    a = run_scenario(name, backend="thread", requests=2)
    b = run_scenario(name, backend="thread", requests=2)
    assert _strip_wall(a) == _strip_wall(b)
    if name == "correlated-crash":
        assert a["restarts"] >= 1 and a["recovery_model_ms"] > 0.0
    else:
        assert a["restarts"] == 0
    assert a["p50_model_ms"] > 0.0 and a["p99_model_ms"] >= a["p50_model_ms"]


def test_scenario_reports_match_across_backends():
    """The tentpole determinism claim: one scenario seed, one SLO report,
    whether ranks are threads or forked processes."""
    thread = run_scenario("correlated-crash", backend="thread", requests=2)
    process = run_scenario("correlated-crash", backend="process", requests=2)
    assert _strip_wall(thread) == _strip_wall(process)


# ---------------------------------------------------------------------------
# property: adversity pricing never perturbs the algorithm
# ---------------------------------------------------------------------------

_BASELINES: dict = {}


def _logical_fingerprint(coo, pr, pc, plan=None):
    mate_r, mate_c, stats = run_mcm_dist_resilient(coo, pr, pc, faults=plan)
    comm = {
        key: {f: d[f] for f in ("calls", "messages", "words")}
        for key, d in (stats.comm_by_alg or {}).items()
    }
    return mate_r, mate_c, stats.total_words, comm


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    grid=st.sampled_from([(1, 2), (2, 2)]),
    factor=st.floats(1.0, 64.0, allow_nan=False),
)
def test_stragglers_and_links_never_change_logical_behavior(seed, grid, factor):
    """Stragglers and degraded links reprice time; they must never change
    the message pattern or the matching itself."""
    coo = _BASELINES.setdefault("coo", er(scale=5, seed=17, edgefactor=8))
    base = _BASELINES.get(grid)
    if base is None:
        base = _BASELINES[grid] = _logical_fingerprint(coo, *grid)
    plan = FaultPlan.parse(
        f"straggler:factor={factor},rank=any;"
        f"link:src=0,dst=*,alpha={factor};disrupt:p=0.5,factor={factor}",
        seed=seed,
    )
    mate_r, mate_c, words, comm = _logical_fingerprint(coo, *grid, plan=plan)
    assert np.array_equal(mate_r, base[0])
    assert np.array_equal(mate_c, base[1])
    assert words == base[2]
    assert comm == base[3]


def test_adversity_prices_time_but_matches_the_fault_free_mates():
    """End-to-end: the straggler scenario's graphs matched under adversity
    equal the plain run's matching, while model time is inflated."""
    coo = er(scale=5, seed=23, edgefactor=8)
    plain_r, plain_c, _ = run_mcm_dist(coo, 2, 2, init="none")
    plan = FaultPlan.parse("straggler:factor=8,rank=any", seed=2)
    mate_r, mate_c, stats = run_mcm_dist_resilient(
        coo, 2, 2, faults=plan, init="none"
    )
    ref_r, ref_c, ref_stats = run_mcm_dist_resilient(
        coo, 2, 2, faults=FaultPlan.parse("", seed=2), init="none"
    )
    assert np.array_equal(mate_r, plain_r) and np.array_equal(mate_c, plain_c)
    assert np.array_equal(ref_r, plain_r) and np.array_equal(ref_c, plain_c)
    assert stats.model_seconds > ref_stats.model_seconds > 0.0
