"""Property-based tests: collectives must equal their sequential oracles for
arbitrary payload shapes, rank counts and roots."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.runtime import MAX, MIN, SUM, spmd


@st.composite
def payload_matrix(draw, max_p=6, max_len=6):
    """One integer array per rank (possibly different lengths per test but
    equal across ranks, as collectives require)."""
    p = draw(st.integers(1, max_p))
    n = draw(st.integers(0, max_len))
    rows = draw(
        st.lists(
            st.lists(st.integers(-1000, 1000), min_size=n, max_size=n),
            min_size=p, max_size=p,
        )
    )
    return p, [np.array(r, dtype=np.int64) for r in rows]


@settings(max_examples=25, deadline=None)
@given(payload_matrix(), st.data())
def test_bcast_any_root(pm, data):
    p, rows = pm
    root = data.draw(st.integers(0, p - 1))

    def main(comm):
        got = comm.bcast(rows[comm.rank] if comm.rank == root else None, root=root)
        return got.tolist()

    res = spmd(p, main)
    for v in res:
        assert v == rows[root].tolist()


@settings(max_examples=25, deadline=None)
@given(payload_matrix(), st.data())
def test_reduce_and_allreduce_match_numpy(pm, data):
    p, rows = pm
    root = data.draw(st.integers(0, p - 1))
    op, np_fn = data.draw(st.sampled_from([
        (SUM, lambda arrs: np.sum(arrs, axis=0)),
        (MIN, lambda arrs: np.min(arrs, axis=0)),
        (MAX, lambda arrs: np.max(arrs, axis=0)),
    ]))
    expected = np_fn(np.stack(rows)).tolist() if rows[0].size else []

    def main(comm):
        r = comm.reduce(rows[comm.rank], op=op, root=root)
        ar = comm.allreduce(rows[comm.rank], op=op)
        return (None if r is None else r.tolist(), ar.tolist())

    res = spmd(p, main)
    assert res[root][0] == expected
    for r, ar in res:
        assert ar == expected
    for rank in range(p):
        if rank != root:
            assert res[rank][0] is None


@settings(max_examples=25, deadline=None)
@given(payload_matrix())
def test_allgather_preserves_rank_order(pm):
    p, rows = pm

    def main(comm):
        return [x.tolist() for x in comm.allgather(rows[comm.rank])]

    res = spmd(p, main)
    expected = [r.tolist() for r in rows]
    for v in res:
        assert v == expected


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 6), st.data())
def test_alltoall_is_transpose(p, data):
    matrix = data.draw(
        st.lists(
            st.lists(st.integers(-100, 100), min_size=p, max_size=p),
            min_size=p, max_size=p,
        )
    )

    def main(comm):
        return comm.alltoall(matrix[comm.rank])

    res = spmd(p, main)
    for j in range(p):
        assert res[j] == [matrix[i][j] for i in range(p)]


@settings(max_examples=25, deadline=None)
@given(payload_matrix())
def test_scan_exscan_prefixes(pm):
    p, rows = pm

    def main(comm):
        inc = comm.scan(rows[comm.rank], op=SUM)
        exc = comm.exscan(rows[comm.rank], op=SUM)
        return (inc.tolist(), None if exc is None else exc.tolist())

    res = spmd(p, main)
    for r in range(p):
        inc_expect = np.sum(np.stack(rows[: r + 1]), axis=0).tolist()
        assert res[r][0] == inc_expect
        if r == 0:
            assert res[r][1] is None
        else:
            assert res[r][1] == np.sum(np.stack(rows[:r]), axis=0).tolist()


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 8), st.data())
def test_split_partitions_and_allreduce_within_colors(p, data):
    colors = data.draw(st.lists(st.integers(0, 2), min_size=p, max_size=p))

    def main(comm):
        sub = comm.split(color=colors[comm.rank])
        total = sub.allreduce(comm.rank, op=SUM)
        return (colors[comm.rank], sub.size, total)

    res = spmd(p, main)
    for color in set(colors):
        members = [r for r in range(p) if colors[r] == color]
        for r in members:
            got_color, size, total = res[r]
            assert got_color == color
            assert size == len(members)
            assert total == sum(members)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 6), st.integers(0, 5), st.data())
def test_gatherv_scatter_roundtrip(p, n, data):
    root = data.draw(st.integers(0, p - 1))

    def main(comm):
        piece = np.full(n, comm.rank, dtype=np.int64)
        gathered = comm.gatherv(piece, root=root)
        if comm.rank == root:
            back = comm.scatter(gathered, root=root)
        else:
            back = comm.scatter(None, root=root)
        return back.tolist()

    res = spmd(p, main)
    for r in range(p):
        assert res[r] == [r] * n
