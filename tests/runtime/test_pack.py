"""Roundtrip and encoding-choice tests for the zero-copy packing layer."""

import numpy as np
import pytest

from repro.runtime import pack_arrays, pack_indices, unpack_arrays, unpack_indices
from repro.runtime.pack import _DTYPES, _MAX_ARRAYS


def _assert_roundtrip(*arrays):
    out = unpack_arrays(pack_arrays(*arrays))
    assert len(out) == len(arrays)
    for got, want in zip(out, arrays):
        want = np.asarray(want)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)


def test_single_array_roundtrip():
    _assert_roundtrip(np.arange(17, dtype=np.int64))


def test_parallel_equal_length_arrays_roundtrip():
    n = 11
    _assert_roundtrip(
        np.arange(n, dtype=np.int64),
        np.arange(n, dtype=np.int64) * 7,
        np.arange(n, dtype=np.int64) % 3,
    )


def test_unequal_length_arrays_roundtrip():
    _assert_roundtrip(
        np.arange(5, dtype=np.int64),
        np.arange(12, dtype=np.int32),
        np.empty(0, dtype=np.float64),
    )


@pytest.mark.parametrize("dt", _DTYPES, ids=str)
def test_every_supported_dtype_roundtrips(dt):
    rng = np.random.default_rng(0)
    if dt == np.dtype(bool):
        a = rng.integers(0, 2, 9).astype(bool)
    elif dt.kind == "f":
        a = rng.random(9).astype(dt)
    else:
        a = rng.integers(0, 100, 9).astype(dt)
    _assert_roundtrip(a)


def test_all_empty_arrays_roundtrip():
    _assert_roundtrip(np.empty(0, np.int64), np.empty(0, np.uint8))


def test_max_arrays_roundtrip_and_limits():
    arrays = [np.arange(3, dtype=np.int64) + i for i in range(_MAX_ARRAYS)]
    _assert_roundtrip(*arrays)
    with pytest.raises(ValueError, match="1.."):
        pack_arrays()
    with pytest.raises(ValueError, match="1.."):
        pack_arrays(*(arrays + [np.arange(3)]))


def test_odd_byte_sizes_are_padded_not_truncated():
    # int8/bool segments are not 8-byte multiples; padding must not leak
    # between consecutive segments.
    _assert_roundtrip(
        np.array([1, 2, 3], dtype=np.int8),
        np.array([True, False, True, True, False], dtype=bool),
        np.array([9.5], dtype=np.float64),
    )


def test_unsupported_inputs_are_rejected():
    with pytest.raises(ValueError, match="1-D"):
        pack_arrays(np.zeros((2, 2), dtype=np.int64))
    with pytest.raises(ValueError, match="unsupported dtype"):
        pack_arrays(np.zeros(2, dtype=np.complex128))


def test_unpack_returns_views_of_the_buffer():
    buf = pack_arrays(np.arange(4, dtype=np.int64))
    (a,) = unpack_arrays(buf)
    assert a.base is not None  # zero-copy: a view, not a fresh allocation
    buf[8] += 1  # poke the first payload byte (header is one 8-byte word)
    assert a[0] == 1  # the view sees it


def test_equal_length_header_is_one_word():
    # the fold triples are the hot path: 3 equal-length arrays must spend
    # exactly one 8-byte word on framing
    n = 5
    triple = [np.arange(n, dtype=np.int64)] * 3
    assert pack_arrays(*triple).nbytes == 8 + 3 * 8 * n


# -- pack_indices -----------------------------------------------------------


def _assert_idx_roundtrip(idx, lo, hi):
    got = unpack_indices(pack_indices(idx, lo, hi))
    assert got.dtype == np.int64
    assert np.array_equal(got, np.asarray(idx, np.int64))


def test_sparse_indices_use_raw_encoding():
    idx = np.array([100, 205, 399], dtype=np.int64)
    buf = pack_indices(idx, 100, 400)
    assert int(buf[:4].view(np.int32)[0]) == 0  # raw mode
    _assert_idx_roundtrip(idx, 100, 400)


def test_dense_indices_use_bitmap_encoding():
    lo, hi = 64, 192
    idx = np.arange(lo, hi, 2, dtype=np.int64)  # 64 members over a 128 span
    buf = pack_indices(idx, lo, hi)
    assert int(buf[:4].view(np.int32)[0]) == 1  # bitmap mode
    # 128-bit mask = 2 words vs 64 raw words
    assert buf.size < 8 * idx.size
    _assert_idx_roundtrip(idx, lo, hi)


def test_bitmap_threshold_is_words_not_bytes():
    lo, hi = 0, 640  # 10-word mask
    sparse = np.arange(10, dtype=np.int64) * 64  # 10 members: raw ties, stays raw
    assert int(pack_indices(sparse, lo, hi)[:4].view(np.int32)[0]) == 0
    dense = np.arange(11, dtype=np.int64) * 58  # 11 members: bitmap wins
    assert int(pack_indices(dense, lo, hi)[:4].view(np.int32)[0]) == 1
    _assert_idx_roundtrip(sparse, lo, hi)
    _assert_idx_roundtrip(dense, lo, hi)


def test_empty_and_full_ranges_roundtrip():
    _assert_idx_roundtrip(np.empty(0, np.int64), 5, 50)
    _assert_idx_roundtrip(np.arange(7, 71, dtype=np.int64), 7, 71)
    _assert_idx_roundtrip(np.empty(0, np.int64), 3, 3)  # empty span


def test_bad_range_is_rejected():
    with pytest.raises(ValueError, match="bad index range"):
        pack_indices(np.empty(0, np.int64), 10, 5)
