"""Point-to-point semantics of the simulated runtime."""

import numpy as np
import pytest

from repro.runtime import ANY_SOURCE, ANY_TAG, DeadlockError, spmd


def test_single_rank_returns_value():
    res = spmd(1, lambda comm: comm.rank * 10 + comm.size)
    assert res[0] == 1
    assert res.nranks == 1


def test_ring_exchange():
    def main(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        comm.send(right, comm.rank)
        got = comm.recv(left)
        assert got == left
        return got

    res = spmd(5, main)
    assert res.values == [4, 0, 1, 2, 3]


def test_numpy_payload_is_copied_on_send():
    """Mutating the buffer after send must not affect the receiver."""

    def main(comm):
        if comm.rank == 0:
            buf = np.arange(10)
            comm.send(1, buf)
            buf[:] = -1  # sender-side mutation after the send returned
            return None
        got = comm.recv(0)
        return got.sum()

    res = spmd(2, main)
    assert res[1] == sum(range(10))


def test_tag_matching_selects_correct_message():
    def main(comm):
        if comm.rank == 0:
            comm.send(1, "a", tag=7)
            comm.send(1, "b", tag=9)
            return None
        # Receive out of send order by tag.
        second = comm.recv(0, tag=9)
        first = comm.recv(0, tag=7)
        return (first, second)

    res = spmd(2, main)
    assert res[1] == ("a", "b")


def test_same_source_same_tag_is_non_overtaking():
    def main(comm):
        if comm.rank == 0:
            for i in range(20):
                comm.send(1, i, tag=3)
            return None
        return [comm.recv(0, tag=3) for _ in range(20)]

    res = spmd(2, main)
    assert res[1] == list(range(20))


def test_any_source_any_tag_wildcards():
    def main(comm):
        if comm.rank == comm.size - 1:
            seen = set()
            for _ in range(comm.size - 1):
                payload, src, tag = comm.recv_with_status(ANY_SOURCE, ANY_TAG)
                assert payload == src * 100
                assert tag == src
                seen.add(src)
            return seen
        comm.send(comm.size - 1, comm.rank * 100, tag=comm.rank)
        return None

    res = spmd(4, main)
    assert res[3] == {0, 1, 2}


def test_sendrecv_simultaneous_exchange_no_deadlock():
    def main(comm):
        partner = comm.size - 1 - comm.rank
        got = comm.sendrecv(partner, comm.rank, partner, tag=1)
        return got

    res = spmd(6, main)
    assert res.values == [5, 4, 3, 2, 1, 0]


def test_probe():
    def main(comm):
        if comm.rank == 0:
            assert not comm.probe(1, tag=2)
            comm.send(1, "x", tag=2)
            comm.recv(1, tag=5)  # ack: guarantees rank 1 probed after arrival
            return None
        while not comm.probe(0, tag=2):
            pass
        got = comm.recv(0, tag=2)
        comm.send(0, "ack", tag=5)
        return got

    res = spmd(2, main)
    assert res[1] == "x"


def test_recv_without_send_raises_deadlock_error():
    def main(comm):
        if comm.rank == 0:
            comm.recv(1, tag=0)  # never sent
        return None

    with pytest.raises(DeadlockError):
        spmd(2, main, timeout=0.3)


class Boom(RuntimeError):
    """Module-level so the process backend can pickle it over the result
    pipe — function-local exception types degrade to CommError there."""


def test_exception_in_one_rank_propagates_and_unblocks_peers():
    def main(comm):
        if comm.rank == 0:
            raise Boom("rank 0 died")
        # Rank 1 would deadlock forever waiting on rank 0 without abort.
        comm.recv(0)
        return None

    with pytest.raises(Boom, match="rank 0 died"):
        spmd(2, main, timeout=5.0)


def test_send_to_out_of_range_rank_raises():
    def main(comm):
        comm.send(comm.size + 3, 1)

    with pytest.raises(Exception):
        spmd(2, main, timeout=1.0)


def test_reserved_tag_rejected_for_user_messages():
    from repro.runtime import CommError

    def main(comm):
        comm.send((comm.rank + 1) % comm.size, 0, tag=1 << 30)

    with pytest.raises(CommError, match="reserved for collective"):
        spmd(2, main, timeout=1.0)


def test_reserved_tag_rejected_on_recv_and_probe():
    from repro.runtime import CommError

    def recv_main(comm):
        comm.recv(tag=1 << 30)

    with pytest.raises(CommError, match="reserved for collective"):
        spmd(2, recv_main, timeout=1.0)

    def probe_main(comm):
        comm.probe(tag=(1 << 30) + 5)

    with pytest.raises(CommError, match="reserved for collective"):
        spmd(2, probe_main, timeout=1.0)


def test_negative_tag_rejected_for_send_but_wildcard_recv_ok():
    from repro.runtime import CommError

    def main(comm):
        comm.send((comm.rank + 1) % comm.size, 0, tag=-1)

    with pytest.raises(CommError):
        spmd(2, main, timeout=1.0)


def test_stats_count_messages_and_words():
    def main(comm):
        if comm.rank == 0:
            comm.send(1, np.zeros(16, dtype=np.int64))  # 16 words
        else:
            comm.recv(0)
        return None

    res = spmd(2, main)
    assert res.stats[0].messages_sent == 1
    assert res.stats[0].words_sent == 16
    assert res.stats[1].messages_sent == 0
    assert res.total_messages == 1
