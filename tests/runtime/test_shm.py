"""Unit tests for the shared-memory transport primitives: the message
codec (array fast path and pickle fallback) and the per-destination ring
buffer (framing, chunking, wraparound, doorbell)."""

import multiprocessing as mp
import os
import threading
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.runtime.shm import (
    Ring,
    carve_rings,
    decode_header,
    decode_message,
    encode_message,
    ring_segment_size,
)


def _eq(a, b):
    if isinstance(a, np.ndarray):
        return (
            isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and np.array_equal(a, b)
        )
    if isinstance(a, (tuple, list)):
        return type(a) is type(b) and len(a) == len(b) and all(
            _eq(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_eq(a[k], b[k]) for k in a)
    return a == b


PAYLOADS = [
    None,
    42,
    ("barrier", 3),
    np.arange(1000, dtype=np.int64),                    # bare array fast path
    ("allreduce", 5, np.arange(7, dtype=np.float64)),   # array in tuple
    [np.arange(3, dtype=np.int32), np.zeros(0, dtype=np.uint8), None],
    (1, (np.ones(4), np.array(2.5))),                   # nested + 0-d
    (np.arange(12).reshape(3, 4), "x"),                 # 2-D
    np.arange(10)[::2],                                 # non-contiguous -> pickle
    np.array(["a", "b"], dtype=object),                 # object dtype -> pickle
    {"k": np.arange(5)},                                # dict -> pickle + oob
    (3, [np.arange(6, dtype=np.int16)]),                # list inside tuple
]


@pytest.mark.parametrize("payload", PAYLOADS, ids=range(len(PAYLOADS)))
def test_codec_round_trip(payload):
    enc = encode_message(17, payload, 99, 0.25)
    tag, out, serial, reorder = decode_message(bytearray(enc))
    assert (tag, serial, reorder) == (17, 99, 0.25)
    assert _eq(payload, out)
    assert decode_header(enc) == (17, 99)


def test_codec_none_reorder():
    enc = encode_message(1, "x", 2, None)
    assert decode_message(bytearray(enc))[3] is None


def test_decoded_arrays_are_writable_and_isolated():
    src = np.arange(8, dtype=np.int64)
    enc = encode_message(1, src, 0, None)
    _, out, _, _ = decode_message(bytearray(enc))
    out[0] = 555          # receiver owns its copy
    src[1] = 444          # sender-side mutation after send...
    assert out[0] == 555
    assert out[1] == 1    # ...never reaches the receiver (wire semantics)


def test_sender_payload_not_mutated_by_encode():
    payload = ("tagged", [np.arange(3), "keep"])
    encode_message(5, payload, 0, None)
    assert isinstance(payload[1][0], np.ndarray)  # walk must not scribble


def _make_ring(cap):
    ctx = mp.get_context("fork")
    seg = shared_memory.SharedMemory(create=True, size=ring_segment_size(1, cap))
    ring = carve_rings(seg.buf, 1, cap, [ctx.Lock()], [ctx.Semaphore(0)])[0]
    return ring, seg


def _release(ring, seg):
    ring.release()
    seg.close()
    seg.unlink()


def test_ring_single_frame_round_trip():
    ring, seg = _make_ring(1 << 16)
    try:
        for n in (0, 1, 100, 4000):
            msg = os.urandom(n)
            ring.write(3, msg)
            (src, data), = ring.drain()
            assert src == 3 and bytes(data) == msg
    finally:
        _release(ring, seg)


def test_ring_chunked_message_larger_than_ring():
    """A message bigger than the whole ring flows through as chunked
    frames while a concurrent consumer drains."""
    ring, seg = _make_ring(1 << 14)
    msgs = [os.urandom(n) for n in (40000, 7, 100000, 16384)]
    got = []

    def consume():
        while len(got) < len(msgs):
            ring.wait_data(0.05)
            got.extend(ring.drain())

    t = threading.Thread(target=consume)
    try:
        t.start()
        for m in msgs:
            ring.write(1, m)
        t.join(30)
        assert not t.is_alive()
        assert [bytes(d) for _, d in got] == msgs
    finally:
        _release(ring, seg)


def test_ring_wraparound_torture():
    ring, seg = _make_ring(1 << 14)
    try:
        for rep in range(300):
            msg = os.urandom(2900 + (rep * 37) % 1200)
            ring.write(1, msg)
            (src, data), = ring.drain()
            assert bytes(data) == msg
    finally:
        _release(ring, seg)


def test_ring_interleaves_sources():
    ring, seg = _make_ring(1 << 16)
    try:
        a, b = os.urandom(500), os.urandom(600)
        ring.write(0, a)
        ring.write(5, b)
        (s0, d0), (s1, d1) = ring.drain()
        assert (s0, bytes(d0)) == (0, a)
        assert (s1, bytes(d1)) == (5, b)
    finally:
        _release(ring, seg)


def test_ring_wait_data_times_out_empty():
    ring, seg = _make_ring(1 << 12)
    try:
        assert ring.wait_data(0.05) is False
        ring.write(0, b"x")
        assert ring.wait_data(0.05) is True
    finally:
        _release(ring, seg)
