"""Collective operations: results must equal their NumPy-computed oracles
for every rank count, including non-powers of two."""

import numpy as np
import pytest

from repro.runtime import MAX, MIN, PROD, SUM, CollectiveMismatchError, spmd

SIZES = [1, 2, 3, 4, 5, 7, 8]


@pytest.mark.parametrize("p", SIZES)
def test_barrier_completes(p):
    res = spmd(p, lambda comm: comm.barrier() or comm.rank)
    assert res.values == list(range(p))


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast(p, root):
    root = p - 1 if root == "last" else 0

    def main(comm):
        payload = np.arange(5) * 3 if comm.rank == root else None
        got = comm.bcast(payload, root=root)
        return got.tolist()

    res = spmd(p, main)
    for v in res:
        assert v == [0, 3, 6, 9, 12]


def test_bcast_returns_private_copies():
    def main(comm):
        payload = np.zeros(4) if comm.rank == 0 else None
        got = comm.bcast(payload, root=0)
        got += comm.rank  # mutating my copy must not leak to other ranks
        comm.barrier()
        return float(got.sum())

    res = spmd(4, main)
    assert res.values == [0.0, 4.0, 8.0, 12.0]


@pytest.mark.parametrize("p", SIZES)
def test_gather(p):
    def main(comm):
        return comm.gather(comm.rank ** 2, root=0)

    res = spmd(p, main)
    assert res[0] == [r ** 2 for r in range(p)]
    for r in range(1, p):
        assert res[r] is None


@pytest.mark.parametrize("p", SIZES)
def test_gatherv_variable_sizes(p):
    def main(comm):
        piece = np.full(comm.rank + 1, comm.rank)
        out = comm.gatherv(piece, root=0)
        if comm.rank == 0:
            return np.concatenate(out).tolist()
        return None

    res = spmd(p, main)
    expected = [r for r in range(p) for _ in range(r + 1)]
    assert res[0] == expected


@pytest.mark.parametrize("p", SIZES)
def test_scatter(p):
    def main(comm):
        payloads = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
        return comm.scatter(payloads, root=0)

    res = spmd(p, main)
    assert res.values == [i * 10 for i in range(p)]


def test_scatter_wrong_count_raises():
    def main(comm):
        payloads = [0] if comm.rank == 0 else None
        comm.scatter(payloads, root=0)

    with pytest.raises(ValueError):
        spmd(3, main, timeout=1.0)


@pytest.mark.parametrize("p", SIZES)
def test_allgather(p):
    def main(comm):
        out = comm.allgather(np.array([comm.rank, comm.rank * 2]))
        return np.concatenate(out).tolist()

    res = spmd(p, main)
    expected = [x for r in range(p) for x in (r, r * 2)]
    for v in res:
        assert v == expected


@pytest.mark.parametrize("p", SIZES)
def test_alltoall(p):
    """Rank r sends r*size+j to rank j; rank j must hold column j of that
    matrix afterwards."""

    def main(comm):
        payloads = [comm.rank * comm.size + j for j in range(comm.size)]
        return comm.alltoall(payloads)

    res = spmd(p, main)
    for j in range(p):
        assert res[j] == [r * p + j for r in range(p)]


@pytest.mark.parametrize("p", SIZES)
def test_alltoallv_variable_arrays(p):
    def main(comm):
        payloads = [np.full(j, comm.rank) for j in range(comm.size)]
        got = comm.alltoallv(payloads)
        return [g.tolist() for g in got]

    res = spmd(p, main)
    for j in range(p):
        assert res[j] == [[r] * j for r in range(p)]


def test_alltoall_wrong_count_raises():
    with pytest.raises(ValueError):
        spmd(3, lambda comm: comm.alltoall([1, 2]), timeout=1.0)


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("op,expected_fn", [
    (SUM, lambda p: sum(range(p))),
    (MIN, lambda p: 0),
    (MAX, lambda p: p - 1),
    (PROD, lambda p: 0 if p > 0 else 1),
])
def test_reduce(p, op, expected_fn):
    def main(comm):
        return comm.reduce(comm.rank, op=op, root=0)

    res = spmd(p, main)
    assert res[0] == expected_fn(p)
    for r in range(1, p):
        assert res[r] is None


@pytest.mark.parametrize("p", SIZES)
def test_reduce_nonzero_root(p):
    root = p // 2

    def main(comm):
        return comm.reduce(np.array([comm.rank, 1]), op=SUM, root=root)

    res = spmd(p, main)
    assert res[root].tolist() == [sum(range(p)), p]


@pytest.mark.parametrize("p", SIZES)
def test_allreduce(p):
    def main(comm):
        return comm.allreduce(comm.rank + 1, op=SUM)

    res = spmd(p, main)
    for v in res:
        assert v == p * (p + 1) // 2


@pytest.mark.parametrize("p", SIZES)
def test_allreduce_min_on_arrays(p):
    def main(comm):
        v = np.array([comm.rank, -comm.rank, 5])
        return comm.allreduce(v, op=MIN).tolist()

    res = spmd(p, main)
    for v in res:
        assert v == [0, -(p - 1), 5]


@pytest.mark.parametrize("p", SIZES)
def test_exscan_and_scan(p):
    def main(comm):
        ex = comm.exscan(comm.rank + 1, op=SUM)
        inc = comm.scan(comm.rank + 1, op=SUM)
        return (ex, inc)

    res = spmd(p, main)
    for r in range(p):
        expected_ex = None if r == 0 else sum(range(1, r + 1))
        assert res[r] == (expected_ex, sum(range(1, r + 2)))


def test_collective_mismatch_detected():
    """Ranks entering different collectives with matching sequence numbers
    must fail loudly, not exchange garbage."""

    def main(comm):
        if comm.rank == 0:
            comm.bcast(1, root=0)
        else:
            comm.reduce(1, root=0)

    with pytest.raises((CollectiveMismatchError, Exception)):
        spmd(2, main, timeout=0.5)


def test_split_into_row_communicators():
    """4 ranks -> 2x2 grid: split by row index, then allgather inside rows."""

    def main(comm):
        row = comm.rank // 2
        rowcomm = comm.split(color=row)
        assert rowcomm.size == 2
        got = rowcomm.allgather(comm.rank)
        return (row, rowcomm.rank, got)

    res = spmd(4, main)
    assert res[0] == (0, 0, [0, 1])
    assert res[1] == (0, 1, [0, 1])
    assert res[2] == (1, 0, [2, 3])
    assert res[3] == (1, 1, [2, 3])


def test_split_key_reorders_ranks():
    def main(comm):
        sub = comm.split(color=0, key=-comm.rank)  # reverse order
        return sub.rank

    res = spmd(4, main)
    assert res.values == [3, 2, 1, 0]


def test_nested_split_grid_rows_and_cols():
    """Simulate the 2D grid decomposition used by distmat: a 3x3 grid where
    each rank joins both a row and a column communicator, and a sum over the
    row then the column equals the global sum."""

    def main(comm):
        pr = 3
        i, j = divmod(comm.rank, pr)
        rowc = comm.split(color=i)
        colc = comm.split(color=j)
        row_sum = rowc.allreduce(comm.rank, op=SUM)
        total = colc.allreduce(row_sum, op=SUM)
        return total

    res = spmd(9, main)
    for v in res:
        assert v == sum(range(9))


def test_collectives_on_subcommunicator_are_isolated():
    """Concurrent collectives on disjoint sub-communicators must not
    interfere even though they share the fabric."""

    def main(comm):
        sub = comm.split(color=comm.rank % 2)
        acc = 0
        for _ in range(10):
            acc += sub.allreduce(1, op=SUM)
        return acc

    res = spmd(6, main)
    for v in res:
        assert v == 30
