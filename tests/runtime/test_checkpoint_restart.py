"""Checkpoint stores and the self-healing MCM-DIST recovery driver."""

import numpy as np
import pytest

from repro.matching.mcm_dist import run_mcm_dist
from repro.matching.validate import cardinality, is_valid_matching, verify_maximum
from repro.runtime import (
    Checkpoint,
    CheckpointStore,
    FaultPlan,
    FileCheckpointStore,
    RankKilledError,
    run_mcm_dist_resilient,
)
from repro.sparse import COO, CSC


def random_coo(n1, n2, m, seed):
    rng = np.random.default_rng(seed)
    return COO(n1, n2, rng.integers(0, n1, m), rng.integers(0, n2, m))


# -- stores ------------------------------------------------------------------

def _ck(phase, n=6):
    return Checkpoint(
        phase=phase,
        mate_row=np.arange(n, dtype=np.int64),
        mate_col=np.arange(n, dtype=np.int64),
    )


def test_memory_store_keeps_latest_and_counts_words():
    store = CheckpointStore()
    assert store.latest() is None
    store.save(_ck(1))
    store.save(_ck(3))
    assert store.latest().phase == 3
    store.save(_ck(2))  # stale snapshot never rolls the store backwards
    assert store.latest().phase == 3
    assert store.saves == 2
    assert store.words_written == 2 * (6 + 6 + 2)
    store.clear()
    assert store.latest() is None


def test_file_store_round_trips_and_survives_new_instance(tmp_path):
    d = str(tmp_path / "cks")
    store = FileCheckpointStore(d)
    store.save(_ck(1))
    store.save(_ck(2))
    # a fresh store instance (fresh "process") sees the latest snapshot
    again = FileCheckpointStore(d)
    ck = again.latest()
    assert ck.phase == 2
    assert np.array_equal(ck.mate_row, np.arange(6))
    assert np.array_equal(ck.mate_col, np.arange(6))
    again.clear()
    assert again.latest() is None


def test_file_store_ignores_leftover_tmp_files(tmp_path):
    d = str(tmp_path / "cks")
    store = FileCheckpointStore(d)
    store.save(_ck(4))
    # a crash mid-save leaves only a .tmp file, never a truncated .npz
    (tmp_path / "cks" / "ck_phase000009.npz.tmp").write_bytes(b"garbage")
    assert store.latest().phase == 4


def test_checkpoint_words_property():
    assert _ck(1, n=10).words == 22


# -- resilient driver --------------------------------------------------------

def test_resilient_without_faults_matches_plain_run():
    coo = random_coo(40, 45, 260, 7)
    plain = run_mcm_dist(coo, 2, 2)
    mate_r, mate_c, stats = run_mcm_dist_resilient(coo, 2, 2)
    assert np.array_equal(mate_r, plain[0])
    assert np.array_equal(mate_c, plain[1])
    assert stats.restarts == 0
    assert stats.phases_replayed == 0
    assert stats.checkpoint_words > 0  # phase snapshots were written


def test_resilient_recovers_from_send_crash():
    coo = random_coo(40, 45, 260, 11)
    a = CSC.from_coo(coo)
    plain_card = cardinality(run_mcm_dist(coo, 2, 2)[0])
    plan = FaultPlan.parse("crash:rank=1,at=send:40", seed=0)
    mate_r, mate_c, stats = run_mcm_dist_resilient(coo, 2, 2, faults=plan)
    assert stats.restarts == 1
    assert cardinality(mate_r) == plain_card
    assert is_valid_matching(a, mate_r, mate_c)


def test_resilient_recovers_from_collective_crash():
    coo = random_coo(35, 35, 200, 3)
    plain_card = cardinality(run_mcm_dist(coo, 2, 2)[0])
    plan = FaultPlan.parse("crash:rank=2,at=collective:25", seed=0)
    mate_r, _, stats = run_mcm_dist_resilient(coo, 2, 2, faults=plan)
    assert stats.restarts == 1
    assert cardinality(mate_r) == plain_card


def test_resilient_gives_up_after_max_restarts():
    coo = random_coo(30, 30, 150, 5)
    # phase 1 crashes for EVERY rank spec occurrence; with 0 allowed
    # restarts the first death is fatal
    plan = FaultPlan.parse("crash:rank=0,at=collective:5", seed=0)
    with pytest.raises(RankKilledError):
        run_mcm_dist_resilient(coo, 2, 2, faults=plan, max_restarts=0)


def test_resilient_with_file_store(tmp_path):
    coo = random_coo(40, 40, 230, 13)
    plain_card = cardinality(run_mcm_dist(coo, 2, 2)[0])
    store = FileCheckpointStore(str(tmp_path / "cks"))
    plan = FaultPlan.parse("crash:rank=any,at=phase:every", seed=1)
    mate_r, _, stats = run_mcm_dist_resilient(
        coo, 2, 2, faults=plan, checkpoint_store=store, max_restarts=20
    )
    assert cardinality(mate_r) == plain_card
    assert stats.restarts >= 1
    assert store.latest() is not None  # snapshots really hit the disk
    assert stats.checkpoint_words == store.words_written


def test_resilient_sparse_checkpoint_cadence_replays_phases():
    """checkpoint_every=3 trades snapshot volume for replay: a crash in a
    later phase re-runs the phases since the last snapshot."""
    coo = random_coo(60, 60, 200, 17)  # sparse: needs several phases
    plain = run_mcm_dist(coo, 2, 2, init="none")
    plain_card = cardinality(plain[0])
    assert plain[2].phases >= 3
    plan = FaultPlan.parse(f"crash:rank=any,at=phase:{plain[2].phases - 1}", seed=2)
    mate_r, _, stats = run_mcm_dist_resilient(
        coo, 2, 2, init="none", faults=plan, checkpoint_every=3, max_restarts=5
    )
    assert cardinality(mate_r) == plain_card
    assert stats.restarts == 1
    assert stats.phases_replayed >= 1


def test_resilient_result_is_still_maximum():
    coo = random_coo(45, 50, 270, 23)
    a = CSC.from_coo(coo)
    plan = FaultPlan.parse(
        "crash:rank=any,at=phase:every;transient:p=0.02;delay:p=0.1", seed=4
    )
    mate_r, mate_c, stats = run_mcm_dist_resilient(
        coo, 2, 2, faults=plan, max_restarts=20
    )
    assert is_valid_matching(a, mate_r, mate_c)
    assert verify_maximum(a, mate_r, mate_c)
    assert stats.restarts >= 1


# -- concurrent multi-process writers ----------------------------------------

def _hammer_store(directory, worker, phases):
    import os
    store = FileCheckpointStore(directory)
    for phase in phases:
        n = 64
        store.save(Checkpoint(
            phase=phase,
            mate_row=np.full(n, worker, dtype=np.int64),
            mate_col=np.full(n, phase, dtype=np.int64),
        ))
    os._exit(0)  # skip interpreter teardown races in the fork child


def test_file_store_concurrent_process_writers(tmp_path):
    """Forked writers racing on overlapping phases must never tear a file
    or lose a counter update (the process backend's rank-0 writers plus a
    restarted incarnation all share one directory)."""
    import multiprocessing as mp

    directory = str(tmp_path)
    ctx = mp.get_context("fork")
    nworkers, nphases = 4, 12
    procs = [
        ctx.Process(target=_hammer_store,
                    args=(directory, w, list(range(nphases))))
        for w in range(nworkers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
        assert p.exitcode == 0

    store = FileCheckpointStore(directory)
    store.refresh_counters()
    assert store.saves == nworkers * nphases
    latest = store.latest()
    assert latest is not None and latest.phase == nphases - 1
    # every file must be a complete npz from exactly one writer
    for phase in range(nphases):
        ck_phase = np.load(str(tmp_path / f"ck_phase{phase:06d}.npz"))
        winner = ck_phase["mate_row"][0]
        assert (ck_phase["mate_row"] == winner).all()
        assert (ck_phase["mate_col"] == phase).all()
    # no temp droppings survive
    assert not [n for n in tmp_path.iterdir() if n.name.endswith(".tmp")]


def test_file_store_refresh_counters_single_process(tmp_path):
    store = FileCheckpointStore(str(tmp_path))
    store.save(_ck(0))
    store.save(_ck(1))
    other = FileCheckpointStore(str(tmp_path))
    assert other.saves == 0
    other.refresh_counters()
    assert other.saves == 2
    assert other.words_written == 2 * _ck(0).words
