"""One-sided (RMA) window semantics."""

import numpy as np
import pytest

from repro.runtime import Window, WindowError, spmd


def test_get_reads_remote_memory():
    def main(comm):
        local = np.full(4, comm.rank, dtype=np.int64)
        win = Window(comm, local)
        win.fence()
        got = win.get((comm.rank + 1) % comm.size, 2)
        win.fence()
        win.free()
        return int(got)

    res = spmd(3, main)
    assert res.values == [1, 2, 0]


def test_put_writes_remote_memory():
    def main(comm):
        local = np.zeros(comm.size, dtype=np.int64)
        win = Window(comm, local)
        win.fence()
        for target in range(comm.size):
            win.put(target, comm.rank, comm.rank + 1)
        win.fence()
        win.free()
        return local.tolist()

    res = spmd(4, main)
    for v in res:
        assert v == [1, 2, 3, 4]


def test_vectorized_get_and_put():
    def main(comm):
        local = np.arange(8, dtype=np.int64) + 100 * comm.rank
        win = Window(comm, local)
        win.fence()
        idx = np.array([1, 3, 5])
        vals = win.get((comm.rank + 1) % comm.size, idx)
        win.fence()
        win.free()
        return vals.tolist()

    res = spmd(2, main)
    assert res[0] == [101, 103, 105]
    assert res[1] == [1, 3, 5]


def test_fetch_and_op_replace_returns_old_value():
    """The fused read-old/install-new used by path-parallel augmentation."""

    def main(comm):
        local = np.full(2, -1, dtype=np.int64)
        win = Window(comm, local)
        win.fence()
        if comm.rank == 1:
            old = win.fetch_and_op(0, 0, 42)     # replace
            old2 = win.fetch_and_op(0, 0, 43)    # replace again
            win.fence()
            win.free()
            return (int(old), int(old2))
        win.fence()
        result = int(local[0])
        win.free()
        return result

    res = spmd(2, main)
    assert res[1] == (-1, 42)
    assert res[0] == 43


def test_fetch_and_op_with_operator():
    def main(comm):
        local = np.array([10], dtype=np.int64)
        win = Window(comm, local)
        win.fence()
        old = win.fetch_and_op(comm.rank, 0, 5, op=np.add)
        win.fence()
        win.free()
        return (int(old), int(local[0]))

    res = spmd(1, main)
    assert res[0] == (10, 15)


def test_accumulate_is_atomic_under_contention():
    """All ranks accumulate into rank 0's counter; the total must be exact."""
    P, REPS = 8, 200

    def main(comm):
        local = np.zeros(1, dtype=np.int64)
        win = Window(comm, local)
        win.fence()
        for _ in range(REPS):
            win.accumulate(0, 0, 1)
        win.fence()
        result = int(local[0])
        win.free()
        return result

    res = spmd(P, main)
    assert res[0] == P * REPS


def test_compare_and_swap():
    def main(comm):
        local = np.array([0], dtype=np.int64)
        win = Window(comm, local)
        win.fence()
        observed = win.compare_and_swap(0, 0, expected=0, desired=comm.rank + 1)
        win.fence()
        winner = int(local[0]) if comm.rank == 0 else None
        win.free()
        return (int(observed), winner)

    res = spmd(4, main)
    # Exactly one rank observed 0 and won; rank 0's memory holds the winner.
    winners = [r for r in range(4) if res[r][0] == 0]
    assert len(winners) == 1
    assert res[0][1] == winners[0] + 1


def test_out_of_range_access_raises():
    def main(comm):
        win = Window(comm, np.zeros(4, dtype=np.int64))
        win.fence()
        try:
            win.get(0, 10)
        finally:
            win.fence()
            win.free()

    with pytest.raises(WindowError):
        spmd(2, main, timeout=5.0)


def test_access_after_free_raises():
    def main(comm):
        win = Window(comm, np.zeros(4, dtype=np.int64))
        win.free()
        win.get(0, 0)

    with pytest.raises(WindowError):
        spmd(2, main, timeout=5.0)


def test_window_memory_must_be_1d_array():
    def main(comm):
        Window(comm, np.zeros((2, 2)))

    with pytest.raises(WindowError):
        spmd(1, main, timeout=5.0)


def test_rma_op_counters():
    def main(comm):
        win = Window(comm, np.zeros(4, dtype=np.int64))
        win.fence()
        win.get(0, 1)
        win.put(0, 2, 7)
        win.fetch_and_op(0, 3, 9)
        win.fence()
        counters = (win.rma_ops, win.rma_words)
        win.free()
        return counters

    res = spmd(1, main)
    assert res[0] == (3, 3)


def test_two_windows_coexist():
    def main(comm):
        a = np.full(2, 1, dtype=np.int64)
        b = np.full(2, 2, dtype=np.int64)
        wa = Window(comm, a)
        wb = Window(comm, b)
        wa.fence(); wb.fence()
        va = wa.get((comm.rank + 1) % comm.size, 0)
        vb = wb.get((comm.rank + 1) % comm.size, 0)
        wa.fence(); wb.fence()
        wa.free(); wb.free()
        return (int(va), int(vb))

    res = spmd(2, main)
    for v in res:
        assert v == (1, 2)


def test_fence_after_free_raises():
    def main(comm):
        win = Window(comm, np.zeros(2, dtype=np.int64))
        win.free()
        win.fence()

    with pytest.raises(WindowError, match="after Window.free"):
        spmd(2, main, timeout=5.0)


def test_double_free_raises():
    def main(comm):
        win = Window(comm, np.zeros(2, dtype=np.int64))
        win.free()
        win.free()

    with pytest.raises(WindowError, match="double free"):
        spmd(2, main, timeout=5.0)
