"""Dynamic verifiers: collective trace cross-checking and RMA race detection.

All failure-injection jobs run with ``verify=True`` so divergence raises a
precise :class:`CollectiveMismatchError` / :class:`RmaRaceError` immediately
instead of hitting the deadlock timeout.
"""

import numpy as np
import pytest

from repro.runtime import (
    MAX,
    SUM,
    CollectiveMismatchError,
    RmaRaceError,
    Window,
    WindowError,
    spmd,
)


# ------------------------------------------------------------ collectives


def test_clean_job_reports_verify_summary():
    def main(comm):
        comm.barrier()
        total = comm.allreduce(comm.rank, op=SUM)
        comm.bcast(total, root=0)
        return total

    res = spmd(4, main, verify=True)
    assert res.values == [6, 6, 6, 6]
    assert res.verify_summary is not None
    assert res.verify_summary["collectives_checked"] > 0


def test_verify_off_by_default_has_no_summary():
    res = spmd(2, lambda comm: comm.allreduce(1, op=SUM))
    assert res.verify_summary is None


def test_mismatched_bcast_root_raises_with_both_ranks_named():
    def main(comm):
        # Rank 1 believes the root is itself: classic off-by-rank bug.
        root = 0 if comm.rank != 1 else 1
        return comm.bcast(comm.rank * 10, root=root)

    with pytest.raises(CollectiveMismatchError) as exc:
        spmd(3, main, verify=True, timeout=5.0)
    msg = str(exc.value)
    assert "bcast" in msg
    assert "root" in msg


def test_mixed_allgather_vs_alltoall_raises():
    def main(comm):
        if comm.rank == 0:
            comm.allgather(np.arange(2))
        else:
            comm.alltoall([np.arange(2)] * comm.size)

    with pytest.raises(CollectiveMismatchError) as exc:
        spmd(2, main, verify=True, timeout=5.0)
    msg = str(exc.value)
    assert "allgather" in msg and "alltoall" in msg


def test_mismatched_reduce_op_raises():
    def main(comm):
        op = SUM if comm.rank == 0 else MAX
        return comm.reduce(comm.rank, op=op, root=0)

    with pytest.raises(CollectiveMismatchError) as exc:
        spmd(2, main, verify=True, timeout=5.0)
    assert "sum" in str(exc.value) and "max" in str(exc.value)


def test_mismatched_reduce_payload_shape_raises():
    def main(comm):
        n = 4 if comm.rank == 0 else 5
        return comm.allreduce(np.ones(n, dtype=np.int64), op=SUM)

    with pytest.raises(CollectiveMismatchError):
        spmd(2, main, verify=True, timeout=5.0)


def test_divergent_collective_sequence_raises():
    """One rank runs an extra barrier: the *next* shared collective differs."""

    def main(comm):
        if comm.rank == 0:
            comm.barrier()
        comm.allreduce(1, op=SUM)

    with pytest.raises(CollectiveMismatchError):
        spmd(2, main, verify=True, timeout=5.0)


def test_split_is_part_of_the_checked_sequence():
    def main(comm):
        if comm.rank == 0:
            comm.split(0, 0)
        else:
            comm.bcast(None, root=0)

    with pytest.raises(CollectiveMismatchError) as exc:
        spmd(2, main, verify=True, timeout=5.0)
    assert "split" in str(exc.value)


def test_subcommunicator_collectives_are_verified_independently():
    def main(comm):
        sub = comm.split(comm.rank % 2, comm.rank)
        return sub.allreduce(comm.rank, op=SUM)

    res = spmd(4, main, verify=True)
    assert res.values == [2, 4, 2, 4]


# -------------------------------------------------------------------- RMA


def _window_job(body, nranks=2, size=8):
    def main(comm):
        local = np.zeros(size, dtype=np.int64)
        win = Window(comm, local)
        win.fence()
        out = body(comm, win)
        win.fence()
        win.free()
        return out

    return spmd(nranks, main, verify=True, timeout=5.0)


def test_out_of_range_put_raises_window_error():
    def body(comm, win):
        if comm.rank == 0:
            win.put(1, 10_000, 5)

    with pytest.raises(WindowError):
        _window_job(body)


def test_overlapping_puts_race_names_both_accesses():
    def body(comm, win):
        win.put(0, np.array([2, 3]), comm.rank)

    with pytest.raises(RmaRaceError) as exc:
        _window_job(body, nranks=2)
    msg = str(exc.value)
    assert "put" in msg
    assert "first access" in msg and "second access" in msg
    assert "rank 0:" in msg and "rank 1:" in msg


def test_get_put_overlap_is_a_race():
    """The bug ISSUE seeds into a path walk: read-modify-write with plain
    get+put instead of the atomic fetch_and_op."""

    def body(comm, win):
        if comm.rank == 0:
            old = win.get(0, 1)
            win.put(0, 1, old + 1)
        else:
            win.put(0, 1, -comm.rank)

    with pytest.raises(RmaRaceError):
        _window_job(body, nranks=2)


def test_concurrent_gets_do_not_race():
    def body(comm, win):
        return int(win.get(0, 3))

    res = _window_job(body, nranks=3)
    assert res.values == [0, 0, 0]


def test_atomic_accumulates_do_not_race():
    def body(comm, win):
        win.accumulate(0, 2, comm.rank + 1)
        win.fetch_and_op(0, 2, 0, op=np.add)

    _window_job(body, nranks=3)


def test_fence_separates_epochs_no_race():
    def body(comm, win):
        if comm.rank == 0:
            win.put(0, 4, 7)
        win.fence()
        if comm.rank == 1:
            win.put(0, 4, 9)

    _window_job(body, nranks=2)


def test_disjoint_index_puts_do_not_race():
    def body(comm, win):
        win.put(0, comm.rank, comm.rank)

    _window_job(body, nranks=4, size=4)


def test_rma_ops_counted_in_summary():
    def main(comm):
        local = np.zeros(4, dtype=np.int64)
        win = Window(comm, local)
        win.fence()
        win.put((comm.rank + 1) % comm.size, 0, comm.rank)
        win.fence()
        got = win.get((comm.rank + 1) % comm.size, 0)
        win.fence()
        win.free()
        return int(got)

    res = spmd(2, main, verify=True)
    assert res.verify_summary["rma_ops_checked"] == 4  # 2 puts + 2 gets


def test_race_detection_off_when_not_verifying():
    """Without --verify the racy program keeps the old best-effort semantics
    (last writer wins) rather than raising."""

    def main(comm):
        local = np.zeros(8, dtype=np.int64)
        win = Window(comm, local)
        win.fence()
        win.put(0, np.array([2, 3]), comm.rank)
        win.fence()
        win.free()
        return None

    spmd(2, main)  # must not raise


# ------------------------------------------------------------- end-to-end


def test_mcm_dist_runs_clean_under_full_verification():
    from repro.graphs import rmat
    from repro.matching.mcm_dist import run_mcm_dist

    coo = rmat.er(scale=7, seed=3)
    mate_r, mate_c, stats = run_mcm_dist(coo, 2, 2, augment="path", verify=True)
    assert stats.verify_summary is not None
    assert stats.verify_summary["collectives_checked"] > 0
    assert stats.verify_summary["rma_ops_checked"] > 0
    assert (mate_r != -1).sum() == stats.final_cardinality
