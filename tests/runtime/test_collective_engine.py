"""Property tests for the latency-aware collective engine.

Every engine algorithm must be output-equivalent to its naive baseline (and
to a NumPy-computed oracle) on random ragged payloads across rank counts,
including non-powers of two; ``CommStats.by_alg`` must attribute each call
to the algorithm that actually ran, with the modeled step counts.
"""

import numpy as np
import pytest

from repro.distmat.ops import allgather_values, route
from repro.graphs.rmat import er
from repro.matching.mcm_dist import run_mcm_dist
from repro.runtime import (
    DEFAULT_CONFIG,
    MAX,
    NAIVE_CONFIG,
    SUM,
    CollectiveConfig,
    spmd,
)

SIZES = [1, 2, 3, 4, 5, 7, 8, 9]


def _payload(rank, k=0, size=None, dtype=np.int64):
    """Deterministic ragged per-rank payload (some ranks contribute nothing)."""
    n = (rank * 13 + k * 5) % 7 if size is None else size
    return (np.arange(n, dtype=dtype) * 31 + rank * 1000 + k * 100).astype(dtype)


def _merged_by_alg(result):
    out = {}
    for s in result.stats:
        for key, d in s.by_alg.items():
            acc = out.setdefault(key, dict.fromkeys(d, 0))
            for f, v in d.items():
                acc[f] += v
    return out


# -- bcast / reduce ----------------------------------------------------------


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("alg", ["binomial", "linear"])
def test_bcast_algorithms_match_oracle(p, alg):
    root = p // 2

    def main(comm):
        payload = _payload(root, size=9) if comm.rank == root else None
        return comm.bcast(payload, root=root)

    res = spmd(p, main, comm_config=CollectiveConfig(bcast=alg))
    for got in res:
        assert np.array_equal(got, _payload(root, size=9))
    assert set(_merged_by_alg(res)) == {f"bcast:{alg}"}


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("alg", ["binomial", "linear"])
def test_reduce_algorithms_match_oracle(p, alg):
    root = p - 1
    want = np.sum([_payload(r, size=6) for r in range(p)], axis=0)

    def main(comm):
        return comm.reduce(_payload(comm.rank, size=6), op=SUM, root=root)

    res = spmd(p, main, comm_config=CollectiveConfig(reduce=alg))
    assert np.array_equal(res[root], want)
    for r in range(p):
        if r != root:
            assert res[r] is None
    assert set(_merged_by_alg(res)) == {f"reduce:{alg}"}


# -- allreduce ---------------------------------------------------------------


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("alg", ["doubling", "reduce_bcast", "linear"])
@pytest.mark.parametrize("op,np_op", [(SUM, np.sum), (MAX, np.max)])
def test_allreduce_algorithms_match_oracle(p, alg, op, np_op):
    want = np_op([_payload(r, size=5) for r in range(p)], axis=0)

    def main(comm):
        return comm.allreduce(_payload(comm.rank, size=5), op=op)

    res = spmd(p, main, comm_config=CollectiveConfig(allreduce=alg))
    for got in res:
        assert np.array_equal(got, want)
    assert f"allreduce:{alg}" in _merged_by_alg(res)


def test_allreduce_algorithms_agree_on_scalars():
    for alg in ("doubling", "reduce_bcast", "linear"):
        res = spmd(
            5,
            lambda comm: comm.allreduce(comm.rank + 1, op=SUM),
            comm_config=CollectiveConfig(allreduce=alg),
        )
        assert list(res) == [15] * 5


# -- allgather(v) ------------------------------------------------------------


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("alg", ["dissemination", "ring"])
def test_allgatherv_ragged_payloads_match_oracle(p, alg):
    want = [_payload(r) for r in range(p)]  # ragged, some empty

    def main(comm):
        return comm.allgatherv(_payload(comm.rank))

    res = spmd(p, main, comm_config=CollectiveConfig(allgather=alg))
    for got in res:
        assert len(got) == p
        for g, w in zip(got, want):
            assert np.array_equal(g, w)
    assert set(_merged_by_alg(res)) == {f"allgather:{alg}"}


# -- alltoall(v) -------------------------------------------------------------


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("alg", ["bruck", "pairwise"])
def test_alltoallv_ragged_payloads_match_oracle(p, alg):
    def main(comm):
        payloads = [_payload(comm.rank, k=d) for d in range(p)]
        return comm.alltoallv(payloads)

    res = spmd(p, main, comm_config=CollectiveConfig(alltoall=alg))
    for r in range(p):
        got = res[r]
        assert len(got) == p
        for s in range(p):
            assert np.array_equal(got[s], _payload(s, k=r))
    assert set(_merged_by_alg(res)) == {f"alltoall:{alg}"}


_AUTO = CollectiveConfig(alltoall="auto")


@pytest.mark.parametrize("p", [4, 5, 9])
def test_alltoall_default_is_pairwise(p):
    # The default flipped from auto to pairwise with the aggregation
    # engine: Bruck's forwarded words depend on payloads the sender never
    # sees, so it has no analytic ledger and cannot be hub-planned.
    def main(comm):
        return comm.alltoall([np.arange(2, dtype=np.int64)] * comm.size)

    res = spmd(p, main)
    assert set(_merged_by_alg(res)) == {"alltoall:pairwise"}


@pytest.mark.parametrize("p", [4, 5, 9])
def test_alltoall_auto_picks_bruck_for_small_payloads(p):
    def main(comm):
        return comm.alltoall([np.arange(2, dtype=np.int64)] * comm.size)

    res = spmd(p, main, comm_config=_AUTO)
    assert set(_merged_by_alg(res)) == {"alltoall:bruck"}


@pytest.mark.parametrize("p", [5, 9])  # at p=4, ⌈log₂p⌉/2 = 1: Bruck never loses
def test_alltoall_auto_picks_pairwise_for_large_payloads(p):
    def main(comm):
        return comm.alltoall([np.arange(512, dtype=np.int64)] * comm.size)

    res = spmd(p, main, comm_config=_AUTO)
    assert set(_merged_by_alg(res)) == {"alltoall:pairwise"}


@pytest.mark.parametrize("p", [2, 3])
def test_alltoall_auto_small_comms_go_pairwise_without_sizing(p):
    # log2-rounds == p-1 here, so auto skips the counts exchange entirely
    def main(comm):
        return comm.alltoall([np.arange(2, dtype=np.int64)] * comm.size)

    res = spmd(p, main, comm_config=_AUTO)
    by = _merged_by_alg(res)
    assert set(by) == {"alltoall:pairwise"}
    assert by["alltoall:pairwise"]["steps"] == p * (p - 1)  # no sizing rounds


def test_alltoall_auto_decision_is_rank_uniform_under_skew():
    # One rank's huge payload must flip EVERY rank to pairwise (the
    # dissemination max makes the decision global, not per-rank).
    def main(comm):
        n = 4096 if comm.rank == 0 else 1
        return comm.alltoall([np.arange(n, dtype=np.int64)] * comm.size)

    res = spmd(5, main, comm_config=_AUTO)
    assert set(_merged_by_alg(res)) == {"alltoall:pairwise"}


# -- step accounting (the ≥2× latency win at p=9) ----------------------------


def test_step_counts_at_p9_engine_vs_naive():
    def main(comm):
        comm.bcast(np.arange(3), root=0)
        comm.allreduce(np.arange(3), op=SUM)
        comm.allgatherv(np.arange(3))
        return None

    eng = _merged_by_alg(spmd(9, main, comm_config=DEFAULT_CONFIG))
    nai = _merged_by_alg(spmd(9, main, comm_config=NAIVE_CONFIG))
    # per-rank per-call steps: binomial/dissemination ⌈log₂9⌉=4 vs 8 (p-1);
    # doubling 3+2 (non-power-of-two fold) vs 16 (linear reduce+bcast)
    assert eng["bcast:binomial"]["steps"] == 9 * 4
    assert eng["allgather:dissemination"]["steps"] == 9 * 4
    assert eng["allreduce:doubling"]["steps"] == 9 * 5
    assert nai["bcast:linear"]["steps"] == 9 * 8
    assert nai["allgather:ring"]["steps"] == 9 * 8
    assert nai["allreduce:linear"]["steps"] == 9 * 16
    for op, eng_key, nai_key in [
        ("bcast", "bcast:binomial", "bcast:linear"),
        ("allgather", "allgather:dissemination", "allgather:ring"),
        ("allreduce", "allreduce:doubling", "allreduce:linear"),
    ]:
        assert 2 * eng[eng_key]["steps"] <= nai[nai_key]["steps"], op


def test_by_alg_words_account_for_all_collective_traffic():
    def main(comm):
        comm.allgatherv(np.arange(comm.rank + 1, dtype=np.int64))
        comm.alltoallv([np.arange(2, dtype=np.int64)] * comm.size)
        return None

    res = spmd(4, main)
    total_by_alg = sum(d["words"] for d in _merged_by_alg(res).values())
    assert total_by_alg == res.total_words


# -- config plumbing ---------------------------------------------------------


def test_config_validation_rejects_unknown_algorithms():
    with pytest.raises(ValueError, match="unknown bcast algorithm"):
        CollectiveConfig(bcast="tree-of-life")
    with pytest.raises(ValueError, match="unknown alltoall algorithm"):
        CollectiveConfig(alltoall="ring")
    with pytest.raises(ValueError, match="alpha_words"):
        CollectiveConfig(alpha_words=-1.0)


def test_split_inherits_config():
    cfg = CollectiveConfig(allgather="ring", pack=False)

    def main(comm):
        child = comm.split(color=comm.rank % 2)
        return child.config is comm.config

    res = spmd(4, main, comm_config=cfg)
    assert all(res)


# -- dtype preservation (route / allgather_values) ---------------------------


@pytest.mark.parametrize("pack", [True, False])
def test_route_preserves_dtypes_including_empty_results(pack):
    cfg = CollectiveConfig(pack=pack)

    def main(comm):
        # every rank sends only to rank 0: all other ranks receive nothing
        dest = np.zeros(3, dtype=np.int64)
        a = np.arange(3, dtype=np.int32) + comm.rank
        b = (np.arange(3, dtype=np.float64) + comm.rank) / 2
        c = np.full(3, comm.rank, dtype=np.uint8)
        ra, rb, rc = route(comm, dest, a, b, c)
        return ra.dtype, rb.dtype, rc.dtype, ra.size

    res = spmd(4, main, comm_config=cfg)
    for r, (dta, dtb, dtc, n) in enumerate(res):
        assert (dta, dtb, dtc) == (np.dtype(np.int32), np.dtype(np.float64), np.dtype(np.uint8))
        assert n == (12 if r == 0 else 0)


@pytest.mark.parametrize("pack", [True, False])
def test_route_delivers_parallel_arrays_in_source_order(pack):
    cfg = CollectiveConfig(pack=pack)

    def main(comm):
        p = comm.size
        dest = np.arange(p, dtype=np.int64)  # one entry per destination
        vals = np.full(p, comm.rank * 10, dtype=np.int16)
        tags = np.arange(p, dtype=np.int64) + comm.rank * 100
        rv, rt = route(comm, dest, vals, tags)
        return rv.tolist(), rt.tolist()

    res = spmd(4, main, comm_config=cfg)
    for r, (rv, rt) in enumerate(res):
        assert rv == [s * 10 for s in range(4)]
        assert rt == [r + s * 100 for s in range(4)]


def test_allgather_values_preserves_dtype_when_all_empty():
    def main(comm):
        out = allgather_values(comm, np.empty(0, dtype=np.float32))
        return out.dtype, out.size

    for dt, n in spmd(3, main):
        assert dt == np.dtype(np.float32)
        assert n == 0


# -- end-to-end bit-identity -------------------------------------------------

CONFIG_VARIANTS = {
    "engine": None,
    "naive": NAIVE_CONFIG,
    "bruck-pinned": CollectiveConfig(alltoall="bruck", allreduce="reduce_bcast"),
    "no-pack": CollectiveConfig(pack=False, bitmap_frontiers=False),
}


@pytest.mark.parametrize("grid", [(1, 1), (2, 2), (3, 3), (2, 3)],
                         ids=lambda g: f"{g[0]}x{g[1]}")
def test_mate_vectors_bit_identical_across_collective_configs(grid):
    coo = er(scale=6, seed=3)
    ref = None
    for name, cfg in CONFIG_VARIANTS.items():
        mate_r, mate_c, _ = run_mcm_dist(
            coo, *grid, direction="auto", comm_config=cfg
        )
        if ref is None:
            ref = (mate_r, mate_c)
        else:
            assert np.array_equal(mate_r, ref[0]), name
            assert np.array_equal(mate_c, ref[1]), name
