"""Property suite and invariants for the per-rank span tracer.

Four families:

1. hypothesis programs driving the raw :class:`Tracer` API — arbitrary
   begin/end/complete/wait sequences must yield non-negative durations,
   well-formed nesting, and an empty stack after ``flush``;
2. Chrome trace-event export — every trace (including crash-truncated
   ones) round-trips ``json.loads`` with balanced B/E pairs;
3. the cross-check invariant — on er-9 over 1x1/2x2/3x3 grids, traced
   collective words per ``op:alg`` equal ``DistStats.comm_by_alg`` words
   *exactly*, and traced runs produce bit-identical mate vectors;
4. zero overhead when off — an untraced run records nothing anywhere.
"""

import json
from collections import defaultdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.rmat import er
from repro.matching.mcm_dist import run_mcm_dist
from repro.runtime import DistTrace, Tracer, make_trace_clock, spmd, tspan
from repro.runtime.trace import MAIN_TRACK, merge_tracers

# one tracer op: (kind, payload); "end" is applied only when a span is open
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("begin"), st.sampled_from("abcd")),
        st.tuples(st.just("end"), st.none()),
        st.tuples(st.just("complete"), st.floats(0.0, 9.0)),
        st.tuples(st.just("wait"), st.floats(-1.0, 5.0)),
    ),
    max_size=60,
)


def _run_program(ops):
    tr = Tracer(0, make_trace_clock("ticks"))
    begun = 0
    for kind, arg in ops:
        if kind == "begin":
            tr.begin(arg, cat="kernel")
            begun += 1
        elif kind == "end":
            if tr.depth:
                tr.end()
        elif kind == "complete":
            t = tr.now()
            tr.add_complete("epoch", ts=t, dur=arg, track="rma:w0")
        else:
            tr.add_wait(arg)
    open_at_flush = tr.depth
    tr.flush()
    return tr, begun, open_at_flush


@given(OPS)
@settings(max_examples=200, deadline=None)
def test_program_yields_no_negative_durations_and_empty_stack(ops):
    tr, begun, _ = _run_program(ops)
    assert tr.depth == 0
    main = [sp for sp in tr.spans if sp.track == MAIN_TRACK]
    assert len(main) == begun  # every begin closed, by end() or flush()
    for sp in tr.spans:
        assert sp.dur >= 0.0
        assert sp.t1 >= sp.ts
        assert sp.args.get("wait", 0.0) >= 0.0


@given(OPS)
@settings(max_examples=200, deadline=None)
def test_program_nesting_is_well_formed(ops):
    """Main-lane (bseq, eseq) intervals are properly nested or disjoint —
    never partially overlapping — and contain their children's times."""
    tr, _, _ = _run_program(ops)
    main = sorted(
        (sp for sp in tr.spans if sp.track == MAIN_TRACK), key=lambda s: s.bseq
    )
    for sp in main:
        assert sp.bseq < sp.eseq
    for a in main:
        for b in main:
            if a is b:
                continue
            inside = a.bseq < b.bseq and b.eseq < a.eseq
            outside = b.eseq < a.bseq or a.eseq < b.bseq
            swapped = b.bseq < a.bseq and a.eseq < b.eseq
            assert inside or outside or swapped, (a, b)
            if inside:  # child's interval sits within the parent's
                assert a.ts <= b.ts and b.t1 <= a.t1


def _assert_balanced_chrome(doc):
    stacks = defaultdict(list)
    n_b = n_e = 0
    for ev in doc["traceEvents"]:
        key = (ev["pid"], ev["tid"])
        if ev["ph"] == "B":
            stacks[key].append(ev["name"])
            n_b += 1
        elif ev["ph"] == "E":
            assert stacks[key], f"E without B on {key}"
            stacks[key].pop()
            n_e += 1
    assert n_b == n_e
    assert all(not s for s in stacks.values())
    return n_b


@given(OPS)
@settings(max_examples=150, deadline=None)
def test_chrome_export_round_trips_with_balanced_pairs(ops):
    tr, _, open_at_flush = _run_program(ops)
    trace = merge_tracers([tr], "ticks")
    doc = json.loads(json.dumps(trace.to_chrome()))
    pairs = _assert_balanced_chrome(doc)
    assert pairs == trace.nspans
    back = DistTrace.from_chrome(doc)
    assert back.nspans == trace.nspans
    got = sorted((sp.name, sp.dur) for sp in back.all_spans())
    want = sorted((sp.name, sp.dur) for sp in trace.all_spans())
    for (gn, gd), (wn, wd) in zip(got, want):
        assert gn == wn
        # timestamps pass through the microsecond Chrome scale: ULP slack
        assert gd == pytest.approx(wd, rel=1e-9, abs=1e-9)
    truncated = [sp for sp in trace.all_spans() if sp.args.get("truncated")]
    assert len(truncated) == open_at_flush


# -- crash mid-span: flushed at spmd() exit ----------------------------------


class Boom(RuntimeError):
    pass


def test_spans_open_at_a_crash_are_flushed_and_export_balanced():
    # spans opened WITHOUT a context manager (the comm layer's collective
    # spans) stay open when an exception rips through them — the executor's
    # flush must close them, truncated, for every rank
    def main(comm):
        tr = comm.tracer
        tr.begin("outer", cat="phase")
        tr.begin("inner", cat="kernel")
        if comm.rank == 1:
            raise Boom("mid-span death")
        tr.end()
        tr.end()
        return comm.rank

    with pytest.raises(Boom) as info:
        spmd(3, main, trace="ticks")
    trace = info.value.spmd_trace
    assert trace is not None
    r1 = trace.spans[1]
    truncated = [sp.name for sp in r1 if sp.args.get("truncated")]
    assert truncated == ["inner", "outer"]  # innermost flushed first
    assert any(sp.name == "fault:Boom" and sp.cat == "fault" for sp in r1)
    _assert_balanced_chrome(json.loads(json.dumps(trace.to_chrome())))


# -- the cross-check invariant ------------------------------------------------


@pytest.mark.parametrize("grid", [(1, 1), (2, 2), (3, 3)],
                         ids=lambda g: f"{g[0]}x{g[1]}")
def test_traced_words_equal_commstats_exactly_and_results_bit_identical(grid):
    coo = er(scale=9, seed=0)
    mr0, mc0, st0 = run_mcm_dist(coo, *grid)
    assert st0.trace is None
    mr, mc, st = run_mcm_dist(coo, *grid, trace="ticks")
    assert np.array_equal(mr, mr0)
    assert np.array_equal(mc, mc0)
    traced = st.trace.comm_words_by_key()
    assert set(traced) == set(st.comm_by_alg)
    for key, counters in st.comm_by_alg.items():
        assert traced[key] == counters["words"], key
    # and the per-rank totals account for every word each rank sent
    total = sum(st.trace.words_sent(r) for r in range(st.trace.nranks))
    assert total == sum(d["words"] for d in st.comm_by_alg.values())


def test_tick_traces_are_byte_identical_across_runs():
    coo = er(scale=7, seed=1)

    def export():
        _, _, st = run_mcm_dist(coo, 2, 2, trace="ticks")
        return json.dumps(st.trace.to_chrome(), sort_keys=True)

    assert export() == export()


# -- zero overhead when off ---------------------------------------------------


def test_untraced_run_records_nothing():
    def main(comm):
        assert comm.tracer is None
        # the null span context is shared and stateless: safe to nest
        with tspan(comm, "a"):
            with tspan(comm, "b"):
                comm.barrier()
        return comm.allreduce(1)

    res = spmd(3, main)
    assert res.trace is None
    assert list(res) == [3, 3, 3]


def test_trace_report_formats_and_names_dominant_span():
    from repro.simulate.critpath import analyze, format_report

    coo = er(scale=7, seed=1)
    _, _, st = run_mcm_dist(coo, 2, 2, trace="ticks")
    rep = analyze(st.trace, top=3)
    json.dumps(rep)  # JSON-ready
    assert rep["nranks"] == 4
    assert rep["phases"], "expected at least the initializer segment"
    for ph in rep["phases"]:
        assert ph["dominant"] is not None
        assert 0.0 <= ph["skew"] <= 1.0
        assert ph["critical_path"], ph["label"]
    for r in rep["ranks"]:
        assert 0.0 <= r["wait_fraction"] <= 1.0
    text = format_report(rep)
    assert "critical path" in text
    assert rep["phases"][0]["label"] in text
