"""Acceptance matrix: seeded chaos runs recover the fault-free answer.

Mirrors the CI chaos job: for every (seed, grid, plan kind) cell the
resilient driver must finish with the same cardinality as the fault-free
run, produce a valid maximum matching, and (for crash plans) record at
least one restart.
"""

import json
import time

import numpy as np
import pytest

from repro.graphs.rmat import er
from repro.matching.mcm_dist import run_mcm_dist
from repro.matching.validate import cardinality, is_valid_matching, verify_maximum
from repro.runtime import (
    CollectiveConfig,
    FaultPlan,
    RankKilledError,
    run_mcm_dist_resilient,
    spmd,
)
from repro.sparse import CSC

GRIDS = [(1, 1), (2, 2), (3, 3)]
SEEDS = [0, 1, 2]


@pytest.fixture(scope="module")
def graph():
    coo = er(scale=6, seed=42)
    return coo, CSC.from_coo(coo)


@pytest.fixture(scope="module")
def baseline(graph):
    coo, _ = graph
    return {grid: cardinality(run_mcm_dist(coo, *grid)[0]) for grid in GRIDS}


@pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g[0]}x{g[1]}")
@pytest.mark.parametrize("seed", SEEDS)
def test_crash_at_every_phase_boundary_recovers(graph, baseline, grid, seed):
    coo, a = graph
    plan = FaultPlan.parse("crash:rank=any,at=phase:every", seed=seed)
    mate_r, mate_c, stats = run_mcm_dist_resilient(
        coo, *grid, faults=plan, max_restarts=30
    )
    assert stats.restarts >= 1
    assert cardinality(mate_r) == baseline[grid]
    assert is_valid_matching(a, mate_r, mate_c)
    assert verify_maximum(a, mate_r, mate_c)


@pytest.mark.parametrize("seed", SEEDS)
def test_transient_plan_is_transparent(graph, baseline, seed):
    """Retried sends never change the answer — same mates, zero restarts."""
    coo, _ = graph
    plain = run_mcm_dist(coo, 2, 2)
    plan = FaultPlan.parse("transient:p=0.05", seed=seed)
    mate_r, mate_c, stats = run_mcm_dist_resilient(coo, 2, 2, faults=plan)
    assert np.array_equal(mate_r, plain[0])
    assert np.array_equal(mate_c, plain[1])
    assert stats.restarts == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_delay_plan_is_transparent(graph, baseline, seed):
    """Legal reorderings cannot be observed by a deterministic SPMD
    program: the mate vectors are bit-identical to the fault-free run."""
    coo, _ = graph
    plain = run_mcm_dist(coo, 2, 2)
    plan = FaultPlan.parse("delay:p=0.3", seed=seed)
    mate_r, mate_c, stats = run_mcm_dist_resilient(coo, 2, 2, faults=plan)
    assert np.array_equal(mate_r, plain[0])
    assert np.array_equal(mate_c, plain[1])
    assert stats.restarts == 0


def test_mixed_plan_recovers(graph, baseline):
    coo, a = graph
    plan = FaultPlan.parse(
        "crash:rank=any,at=phase:every;transient:p=0.02;delay:p=0.2", seed=7
    )
    mate_r, mate_c, stats = run_mcm_dist_resilient(
        coo, 2, 2, faults=plan, max_restarts=30
    )
    assert stats.restarts >= 1
    assert cardinality(mate_r) == baseline[(2, 2)]
    assert verify_maximum(a, mate_r, mate_c)


def test_same_seed_and_plan_reproduce_the_same_restart_trajectory(graph):
    """Determinism at the MCM level: two resilient runs under the same
    (seed, plan) take identical restart trajectories and land on identical
    mate vectors.  (Bit-for-bit identity of the injected event logs is
    asserted at the spmd level in test_faults.py.)"""
    coo, _ = graph

    def run(seed):
        plan = FaultPlan.parse(
            "crash:rank=any,at=phase:every;transient:p=0.03", seed=seed
        )
        mate_r, _, stats = run_mcm_dist_resilient(
            coo, 2, 2, faults=plan, max_restarts=30
        )
        return mate_r, stats.restarts, stats.phases_replayed

    mates_a, restarts_a, replayed_a = run(99)
    mates_b, restarts_b, replayed_b = run(99)
    assert np.array_equal(mates_a, mates_b)
    assert (restarts_a, replayed_a) == (restarts_b, replayed_b)
    assert restarts_a >= 1


def test_chaos_trace_merges_attempts_with_explicit_restart_spans(graph, baseline):
    """Tracing under fault injection: every attempt's timeline — the killed
    one included — lands in one merged trace with the rank death and each
    restart visible as explicit spans, and the export is valid JSON with
    balanced begin/end pairs."""
    from repro.runtime import DistTrace

    coo, _ = graph
    plan = FaultPlan.parse("crash:rank=any,at=phase:every", seed=1)
    mate_r, _, stats = run_mcm_dist_resilient(
        coo, 2, 2, faults=plan, max_restarts=30, trace="ticks"
    )
    assert stats.restarts >= 1
    assert cardinality(mate_r) == baseline[(2, 2)]
    trace = stats.trace
    assert trace is not None
    fault_spans = [sp for sp in trace.all_spans() if sp.cat == "fault"]
    names = {sp.name for sp in fault_spans}
    assert "restart" in names  # the seam between merged attempts
    assert any(n.startswith("fault:") for n in names)  # the rank death
    # one restart seam per recovery, stamped on every rank
    seams = [sp for sp in fault_spans if sp.name == "restart"]
    assert len(seams) == stats.restarts * trace.nranks
    assert len(trace.meta["attempts"]) == stats.restarts
    # a killed attempt leaves truncated spans, and they are all closed
    assert any(sp.args.get("truncated") for sp in trace.all_spans())
    doc = json.loads(json.dumps(trace.to_chrome()))
    back = DistTrace.from_chrome(doc)  # raises TraceError if unbalanced
    assert back.nspans == trace.nspans


# -- mid-collective crashes: the engine's multi-round schedules must not
# strand peers when a rank dies between rounds -------------------------------


def test_crash_mid_bruck_alltoallv_aborts_all_ranks_promptly():
    """Rank 2's 2nd send is its 2nd Bruck round (p=4: rounds at distance 1,
    then 2) — it dies holding other ranks' forwarded blocks.  Peers blocked
    in the remaining rounds must unwind via abort propagation, well inside
    the deadlock window, and the victim's error must surface."""

    def main(comm):
        payloads = [np.arange(3, dtype=np.int64) + comm.rank for _ in range(comm.size)]
        comm.alltoallv(payloads)
        comm.barrier()
        return comm.rank

    plan = FaultPlan.parse("crash:rank=2,at=send:2", seed=0)
    t0 = time.monotonic()
    with pytest.raises(RankKilledError, match=r"\[spmd rank 2\]"):
        spmd(4, main, faults=plan, timeout=20,
             comm_config=CollectiveConfig(alltoall="bruck"))
    assert time.monotonic() - t0 < 10  # abort propagation, not a timeout


def test_crash_mid_tree_reduce_aborts_all_ranks_promptly():
    """In the p=8 binomial reduce, rank 6 first combines rank 7's
    contribution, then forwards to rank 4; crashing that forward (its 1st
    send) kills an interior tree node mid-reduction.  The subtree it
    absorbed must not deadlock the root — abort propagates instead."""

    def main(comm):
        comm.reduce(np.arange(4, dtype=np.int64) * comm.rank, root=0)
        comm.barrier()
        return comm.rank

    plan = FaultPlan.parse("crash:rank=6,at=send:1", seed=0)
    t0 = time.monotonic()
    with pytest.raises(RankKilledError, match=r"\[spmd rank 6\]"):
        spmd(8, main, faults=plan, timeout=20,
             comm_config=CollectiveConfig(reduce="binomial"))
    assert time.monotonic() - t0 < 10
