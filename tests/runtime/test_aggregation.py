"""Parity of the superstep message coalescer: aggregate=on vs off.

Aggregation is a *physical* optimization: with ``CollectiveConfig
.aggregate`` on, every payload a rank emits toward one peer within a
superstep travels as one framed buffer, and hub/star plans replace the
round-based collective schedules on the wire.  Nothing logical may move:
mate vectors must stay bit-identical, the logical ``by_alg`` ledger (the
quantity BENCH gates and the trace cross-check consume) must match entry
for entry, and the only visible difference is the physical frame ledger
— strictly fewer frames than logical messages once the grid is big
enough for the hub plans to engage (p ≥ 4).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.rmat import er, g500
from repro.matching.mcm_dist import run_mcm_dist
from repro.runtime.comm import CollectiveConfig

AGG_ON = CollectiveConfig(aggregate=True)
AGG_OFF = CollectiveConfig(aggregate=False)

GRIDS = [(1, 1), (2, 2), (3, 3)]
INPUTS = {
    "er": lambda seed: er(6, seed=seed),
    "rmat": lambda seed: g500(6, seed=seed),
}


def _run(coo, pr, pc, backend, config, **kw):
    return run_mcm_dist(
        coo, pr, pc, backend=backend, comm_config=config, timeout=60, **kw
    )


def _assert_on_off_parity(coo, pr, pc, backend):
    mr_on, mc_on, st_on = _run(coo, pr, pc, backend, AGG_ON)
    mr_off, mc_off, st_off = _run(coo, pr, pc, backend, AGG_OFF)
    np.testing.assert_array_equal(mr_on, mr_off)
    np.testing.assert_array_equal(mc_on, mc_off)
    # the logical ledger is aggregation-invariant, entry for entry
    assert st_on.comm_by_alg == st_off.comm_by_alg
    assert st_on.comm_messages == st_off.comm_messages
    # off = one frame per message, by definition of the physical ledger
    assert st_off.frames == st_off.comm_messages
    p = pr * pc
    if p >= 4:
        # hub/star plans engaged: strictly fewer physical frames
        assert st_on.frames < st_on.comm_messages, (
            f"{pr}x{pc} {backend}: {st_on.frames} frames vs "
            f"{st_on.comm_messages} messages — coalescer never engaged"
        )
    else:
        assert st_on.frames <= st_on.comm_messages
    return st_on


# -- the full deterministic grid: grids x inputs x backends -----------------

@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("pr,pc", GRIDS)
@pytest.mark.parametrize("graph", sorted(INPUTS))
def test_on_off_parity(graph, pr, pc, backend):
    _assert_on_off_parity(INPUTS[graph](1), pr, pc, backend)


# -- randomized: hypothesis walks seeds/shapes on the thread backend --------

@settings(max_examples=10, deadline=None)
@given(
    graph=st.sampled_from(sorted(INPUTS)),
    grid=st.sampled_from(GRIDS),
    seed=st.integers(0, 7),
)
def test_on_off_parity_randomized(graph, grid, seed):
    _assert_on_off_parity(INPUTS[graph](seed), *grid, "thread")


# -- frame-ledger observability ---------------------------------------------

def test_flush_spans_reconcile_with_frame_ledger():
    """Every coalesced frame is traced: the ``comm:flush`` spans' frame and
    word totals must equal the physical CommStats ledger exactly, while the
    logical span cross-check (``comm_words_by_key``) stays untouched."""
    coo = er(6, seed=1)
    _, _, stats = _run(coo, 2, 2, "thread", AGG_ON, trace="ticks")
    totals = stats.trace.flush_totals()
    assert totals["frames"] == stats.frames
    assert totals["words"] == stats.frame_words
    # each frame coalesces >= 1 physical entry (logical ledger messages
    # replaced by hub plans never reach the wire, so this counter is the
    # physical batch size, not comm_messages)
    assert totals["messages"] >= totals["frames"]
    # flush spans are physical observability, never logical ledger entries
    for key in stats.trace.comm_words_by_key():
        assert "flush" not in key


def test_direction_auto_overlap_parity():
    """The nonblocking direction-count overlap (iallreduce posted at the
    superstep tail) must preserve on/off parity under direction=auto."""
    coo = er(7, seed=1)
    mr_on, mc_on, st_on = _run(coo, 3, 3, "thread", AGG_ON, direction="auto")
    mr_off, mc_off, st_off = _run(coo, 3, 3, "thread", AGG_OFF, direction="auto")
    np.testing.assert_array_equal(mr_on, mr_off)
    np.testing.assert_array_equal(mc_on, mc_off)
    assert st_on.comm_by_alg == st_off.comm_by_alg
    assert 2 * st_on.frames <= st_on.comm_messages
