"""Property-based tests (hypothesis) for the sparse substrate's invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sparse import COO, CSC, DCSC, SR_MIN_PARENT, SparseVec, VertexFrontier
from repro.sparse.primitives import invert, prune, select, set_dense
from repro.sparse.spvec import NULL


@st.composite
def coo_matrices(draw, max_dim=40, max_nnz=200):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz))
    return COO(nrows, ncols, np.array(rows, np.int64), np.array(cols, np.int64))


@st.composite
def sparse_vectors(draw, max_len=50, min_val=0, max_val=49):
    n = draw(st.integers(1, max_len))
    idx = draw(st.lists(st.integers(0, n - 1), unique=True, max_size=n))
    idx = np.array(sorted(idx), np.int64)
    vals = draw(st.lists(st.integers(min_val, max_val), min_size=idx.size, max_size=idx.size))
    return SparseVec(n, idx, np.array(vals, np.int64))


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_csc_dcsc_coo_round_trips(a):
    assert CSC.from_coo(a).to_coo() == a
    assert DCSC.from_coo(a).to_coo() == a


@settings(max_examples=60, deadline=None)
@given(coo_matrices())
def test_transpose_involution_and_degree_swap(a):
    t = a.transpose()
    assert t.transpose() == a
    assert np.array_equal(a.row_degrees(), t.col_degrees())
    assert a.nnz == t.nnz


@settings(max_examples=60, deadline=None)
@given(coo_matrices(), st.integers(0, 2**32 - 1))
def test_random_permutation_preserves_nnz_and_degree_multiset(a, seed):
    from repro.sparse.permute import randomly_permuted

    b, rp, cp = randomly_permuted(a, np.random.default_rng(seed))
    assert b.nnz == a.nnz
    assert sorted(a.row_degrees().tolist()) == sorted(b.row_degrees().tolist())
    assert sorted(a.col_degrees().tolist()) == sorted(b.col_degrees().tolist())


@settings(max_examples=60, deadline=None)
@given(coo_matrices(max_dim=30, max_nnz=120), st.data())
def test_spmv_winner_is_always_a_real_candidate(a, data):
    """Every (row, parent) the semiring SpMV returns must be an actual edge
    whose column was on the frontier, with the root inherited from it."""
    csc = CSC.from_coo(a)
    k = data.draw(st.integers(0, a.ncols))
    fidx = np.array(sorted(data.draw(
        st.lists(st.integers(0, a.ncols - 1), unique=True, max_size=k)
    )), np.int64)
    fc = VertexFrontier.roots_of_self(a.ncols, fidx)
    fr = csc.spmv_frontier(fc, SR_MIN_PARENT)
    edges = set(zip(a.rows.tolist(), a.cols.tolist()))
    fset = set(fidx.tolist())
    for r, p, root in zip(fr.idx.tolist(), fr.parent.tolist(), fr.root.tolist()):
        assert (r, p) in edges
        assert p in fset
        assert root == p  # initial frontier: root == column id
    # and the reached set is exactly the union of frontier columns' rows
    reached = {r for (r, c) in edges if c in fset}
    assert set(fr.idx.tolist()) == reached


@settings(max_examples=60, deadline=None)
@given(sparse_vectors())
def test_invert_entries_swap(x):
    z = invert(x, length=max(x.n, int(x.val.max()) + 1 if x.nnz else 1))
    pairs = set(zip(x.idx.tolist(), x.val.tolist()))
    for v, i in zip(z.idx.tolist(), z.val.tolist()):
        assert (i, v) in pairs
    # one output entry per distinct value
    assert z.nnz == np.unique(x.val).size if x.nnz else z.nnz == 0


@settings(max_examples=60, deadline=None)
@given(sparse_vectors(), sparse_vectors())
def test_prune_removes_exactly_shared_values(x, q):
    z = prune(x, q)
    qvals = set(q.val.tolist())
    kept = dict(zip(z.idx.tolist(), z.val.tolist()))
    for i, v in zip(x.idx.tolist(), x.val.tolist()):
        if v in qvals:
            assert i not in kept
        else:
            assert kept[i] == v
    # idempotent
    assert prune(z, q) == z


@settings(max_examples=60, deadline=None)
@given(sparse_vectors())
def test_select_set_round_trip(x):
    """SET into a fresh dense vector then re-sparsify = original (when no
    value equals the missing sentinel)."""
    dense = np.full(x.n, NULL, np.int64)
    set_dense(dense, x)
    back = SparseVec.from_dense(dense)
    # values >= 0 by construction of the strategy
    assert back == x
    # SELECT with an always-true predicate is identity
    assert select(x, dense, lambda v: np.ones(v.shape, bool)) == x


@settings(max_examples=40, deadline=None)
@given(coo_matrices(max_dim=20, max_nnz=60))
def test_block_partition_covers_matrix(a):
    """Cutting the matrix into a 2x2 block grid partitions the nonzeros."""
    rmid, cmid = a.nrows // 2, a.ncols // 2
    blocks = [
        a.block(0, rmid, 0, cmid), a.block(0, rmid, cmid, a.ncols),
        a.block(rmid, a.nrows, 0, cmid), a.block(rmid, a.nrows, cmid, a.ncols),
    ]
    assert sum(b.nnz for b in blocks) == a.nnz
