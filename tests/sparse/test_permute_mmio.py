"""Permutation utilities and MatrixMarket I/O."""

import numpy as np
import pytest

from repro.sparse import COO, mmio
from repro.sparse.permute import (
    inverse_permutation,
    matching_to_permutation,
    random_permutation,
    randomly_permuted,
    unpermute_matching,
)
from repro.sparse.spvec import NULL


def test_random_permutation_is_permutation():
    p = random_permutation(100, np.random.default_rng(0))
    assert sorted(p.tolist()) == list(range(100))


def test_inverse_permutation():
    p = random_permutation(50, np.random.default_rng(1))
    inv = inverse_permutation(p)
    assert np.array_equal(p[inv], np.arange(50))
    assert np.array_equal(inv[p], np.arange(50))


def test_randomly_permuted_preserves_graph_structure():
    rng = np.random.default_rng(2)
    a = COO.from_edges(4, 4, [(0, 0), (1, 1), (2, 2), (3, 3), (0, 1)])
    b, rp, cp = randomly_permuted(a, rng)
    assert b.nnz == a.nnz
    # un-permuting recovers the original
    inv_r, inv_c = inverse_permutation(rp), inverse_permutation(cp)
    assert b.permuted(inv_r, inv_c) == a


def test_unpermute_matching_round_trip():
    rng = np.random.default_rng(3)
    n1, n2 = 6, 5
    rp = random_permutation(n1, rng)
    cp = random_permutation(n2, rng)
    # matching on the permuted matrix: new row i matched to new col i (i<4)
    mate_r_new = np.full(n1, NULL, np.int64)
    mate_c_new = np.full(n2, NULL, np.int64)
    for i in range(4):
        mate_r_new[i] = i
        mate_c_new[i] = i
    mate_r, mate_c = unpermute_matching(mate_r_new, mate_c_new, rp, cp)
    # consistency: mate_c[mate_r[i]] == i for matched i, and the pairing maps
    # through the permutations correctly
    for old_r in range(n1):
        if mate_r[old_r] != NULL:
            assert mate_c[mate_r[old_r]] == old_r
            assert mate_r_new[rp[old_r]] == cp[mate_r[old_r]]
    assert (mate_r != NULL).sum() == 4


def test_matching_to_permutation_perfect():
    # square, perfect matching: col j matched to row mate_c[j]
    mate_c = np.array([2, 0, 1], dtype=np.int64)
    perm = matching_to_permutation(mate_c, nrows=3)
    # row mate_c[j] must be sent to position j
    for j, r in enumerate(mate_c):
        assert perm[r] == j
    assert sorted(perm.tolist()) == [0, 1, 2]


def test_matching_to_permutation_deficient():
    # 4 rows, 3 cols, only cols 0 and 2 matched
    mate_c = np.array([3, NULL, 0], dtype=np.int64)
    perm = matching_to_permutation(mate_c, nrows=4)
    assert perm[3] == 0 and perm[0] == 2
    assert sorted(perm.tolist()) == [0, 1, 2, 3]


def test_matching_to_permutation_rejects_bad_rows():
    with pytest.raises(ValueError):
        matching_to_permutation(np.array([7]), nrows=3)


# -- MatrixMarket ---------------------------------------------------------------

def test_mm_write_read_round_trip(tmp_path):
    a = COO.from_edges(4, 6, [(0, 0), (1, 3), (3, 5), (2, 2)])
    path = tmp_path / "a.mtx"
    mmio.write_mm(a, path)
    b = mmio.read_mm(path)
    assert b == a


def test_mm_read_real_field_ignores_values(tmp_path):
    path = tmp_path / "r.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "% comment line\n"
        "2 2 2\n"
        "1 1 3.5\n"
        "2 2 -1.0\n"
    )
    a = mmio.read_mm(path)
    assert a.shape == (2, 2) and a.nnz == 2


def test_mm_read_symmetric_expands(tmp_path):
    path = tmp_path / "s.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "3 3 2\n"
        "2 1\n"
        "3 3\n"
    )
    a = mmio.read_mm(path)
    pairs = set(zip(a.rows.tolist(), a.cols.tolist()))
    assert pairs == {(1, 0), (0, 1), (2, 2)}


def test_mm_read_rejects_garbage(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("hello world\n")
    with pytest.raises(ValueError):
        mmio.read_mm(path)


def test_mm_read_rejects_wrong_count(tmp_path):
    path = tmp_path / "bad2.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 3\n"
        "1 1\n"
    )
    with pytest.raises(ValueError):
        mmio.read_mm(path)


def test_mm_empty_matrix_round_trip(tmp_path):
    a = COO.empty(3, 2)
    path = tmp_path / "e.mtx"
    mmio.write_mm(a, path)
    b = mmio.read_mm(path)
    assert b.shape == (3, 2) and b.nnz == 0
