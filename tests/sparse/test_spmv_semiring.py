"""Semiring SpMV: the Fig. 2 worked example and CSC/DCSC agreement."""

import numpy as np
import pytest

from repro.sparse import (
    COO,
    CSC,
    DCSC,
    SR_MAX_PARENT,
    SR_MIN_PARENT,
    SR_MIN_ROOT,
    SR_RAND_PARENT,
    SR_RAND_ROOT,
    Semiring,
    VertexFrontier,
)
from repro.sparse.semiring import reduce_candidates


def fig2_matrix():
    """The paper's Fig. 2 bipartite graph: rows r1..r5, cols c1..c5 (0-based
    here).  Edges chosen to exercise multi-candidate reduction: row 1 is
    adjacent to frontier columns 0, 1 and 4."""
    edges = [
        (0, 0), (1, 0),
        (1, 1), (2, 1),
        (2, 2), (3, 2),
        (1, 4), (3, 4), (4, 4),
        (4, 3),
    ]
    return CSC.from_coo(COO.from_edges(5, 5, edges))


def unmatched_frontier():
    # initial frontier: unmatched columns 0, 1, 4 with parent=root=self
    return VertexFrontier.roots_of_self(5, np.array([0, 1, 4]))


def test_spmv_min_parent_fig2():
    a = fig2_matrix()
    fr = a.spmv_frontier(unmatched_frontier(), SR_MIN_PARENT)
    # Reached rows: 0 (from c0), 1 (c0,c1,c4 -> min parent c0),
    # 2 (c1), 3 (c4), 4 (c4)
    assert fr.idx.tolist() == [0, 1, 2, 3, 4]
    assert fr.parent.tolist() == [0, 0, 1, 4, 4]
    assert fr.root.tolist() == [0, 0, 1, 4, 4]


def test_spmv_max_parent():
    a = fig2_matrix()
    fr = a.spmv_frontier(unmatched_frontier(), SR_MAX_PARENT)
    assert fr.parent.tolist() == [0, 4, 1, 4, 4]


def test_spmv_rand_parent_is_valid_choice():
    a = fig2_matrix()
    rng = np.random.default_rng(7)
    fr = a.spmv_frontier(unmatched_frontier(), SR_RAND_PARENT, rng)
    assert fr.idx.tolist() == [0, 1, 2, 3, 4]
    # row 1's parent must be one of its adjacent frontier columns
    assert fr.parent[1] in (0, 1, 4)
    # every winner's root equals its parent here (initial frontier)
    assert np.array_equal(fr.parent, fr.root)


def test_spmv_rand_requires_rng():
    a = fig2_matrix()
    with pytest.raises(ValueError):
        a.spmv_frontier(unmatched_frontier(), SR_RAND_ROOT, rng=None)


def test_spmv_rand_parent_distribution():
    """Row 1 has candidates {0, 1, 4}: over many seeds each must appear."""
    a = fig2_matrix()
    seen = set()
    for seed in range(40):
        fr = a.spmv_frontier(unmatched_frontier(), SR_RAND_PARENT, np.random.default_rng(seed))
        seen.add(int(fr.parent[1]))
    assert seen == {0, 1, 4}


def test_spmv_roots_inherited_not_recomputed():
    """When the frontier's roots differ from its indices, winners must carry
    the inherited root."""
    a = fig2_matrix()
    fc = VertexFrontier(5, np.array([1]), np.array([1]), np.array([40 % 5]))  # root=0
    fr = a.spmv_frontier(fc, SR_MIN_PARENT)
    assert fr.idx.tolist() == [1, 2]
    assert fr.parent.tolist() == [1, 1]
    assert fr.root.tolist() == [0, 0]


def test_spmv_empty_frontier():
    a = fig2_matrix()
    fr = a.spmv_frontier(VertexFrontier.empty(5))
    assert fr.is_empty()


def test_spmv_count_is_frontier_degree_sum():
    a = fig2_matrix()
    fc = unmatched_frontier()
    assert a.spmv_count(fc) == 2 + 2 + 3  # deg(c0)+deg(c1)+deg(c4)


def test_min_root_semiring():
    # Two frontier cols with swapped roots: minRoot must pick by root.
    a = fig2_matrix()
    fc = VertexFrontier(5, np.array([0, 1]), np.array([0, 1]), np.array([9 % 5, 0]))
    fr = a.spmv_frontier(fc, SR_MIN_ROOT)
    # row 1 adjacent to c0 (root 4) and c1 (root 0): minRoot -> c1
    assert fr.parent[fr.idx.tolist().index(1)] == 1


@pytest.mark.parametrize("sr", [SR_MIN_PARENT, SR_MAX_PARENT, SR_MIN_ROOT])
def test_csc_and_dcsc_spmv_agree(sr):
    rng = np.random.default_rng(3)
    coo = COO(50, 80, rng.integers(0, 50, 400), rng.integers(0, 80, 400))
    csc = CSC.from_coo(coo)
    dcsc = DCSC.from_coo(coo)
    fidx = np.unique(rng.integers(0, 80, 20))
    fc = VertexFrontier.roots_of_self(80, fidx)
    f1 = csc.spmv_frontier(fc, sr)
    f2 = dcsc.spmv_frontier(fc, sr)
    assert np.array_equal(f1.idx, f2.idx)
    assert np.array_equal(f1.parent, f2.parent)
    assert np.array_equal(f1.root, f2.root)
    assert csc.spmv_count(fc) == dcsc.spmv_count(fc)


def test_dcsc_spmv_on_columns_absent_from_block():
    """Frontier columns that are empty in this block contribute nothing."""
    coo = COO.from_edges(4, 100, [(0, 10), (1, 20)])
    d = DCSC.from_coo(coo)
    fc = VertexFrontier.roots_of_self(100, np.array([5, 10, 50]))
    fr = d.spmv_frontier(fc)
    assert fr.idx.tolist() == [0]
    assert fr.parent.tolist() == [10]
    assert d.spmv_count(fc) == 1


def test_reduce_candidates_empty():
    e = np.empty(0, np.int64)
    r, p, t = reduce_candidates(e, e, e)
    assert r.size == p.size == t.size == 0


def test_semiring_validation():
    with pytest.raises(ValueError):
        Semiring("bad", by="mate", mode="min")
    with pytest.raises(ValueError):
        Semiring("bad", by="parent", mode="median")
    assert SR_MIN_PARENT.deterministic
    assert not SR_RAND_PARENT.deterministic


# -- the O(c) scatter fast path of reduce_candidates -------------------------


def _lexsort_reference(rows, parents, roots, semiring):
    """The pre-fast-path reduction: stable lexsort + first-per-row."""
    key = parents if semiring.by == "parent" else roots
    k = -key if semiring.mode == "max" else key
    order = np.lexsort((k, rows))
    rows, parents, roots = rows[order], parents[order], roots[order]
    first = np.empty(rows.size, dtype=bool)
    first[0] = True
    np.not_equal(rows[1:], rows[:-1], out=first[1:])
    return rows[first], parents[first], roots[first]


@pytest.mark.parametrize("sr", [SR_MIN_PARENT, SR_MAX_PARENT, SR_MIN_ROOT])
@pytest.mark.parametrize("seed", range(6))
def test_scatter_fast_path_matches_lexsort(sr, seed):
    """Dense row ranges (the hot path) must yield the lexsort's winners,
    including its first-arrival tie-breaking, bit for bit."""
    rng = np.random.default_rng(seed)
    c = int(rng.integers(1, 400))
    rows = rng.integers(0, max(1, c // 2), c)  # many ties per row
    parents = rng.integers(0, 50, c)           # many equal keys too
    roots = rng.integers(0, 50, c)
    got = reduce_candidates(rows, parents, roots, sr)
    want = _lexsort_reference(
        rows.astype(np.int64), parents.astype(np.int64), roots.astype(np.int64), sr
    )
    for g, w in zip(got, want):
        assert np.array_equal(g, w)


@pytest.mark.parametrize("sr", [SR_MIN_PARENT, SR_MAX_PARENT])
def test_scatter_fallback_on_wide_rows(sr):
    """Row ids spread over a huge range refuse the dense scratch and fall
    back to the lexsort — winners must be identical either way."""
    from repro.sparse.semiring import _reduce_scatter

    rng = np.random.default_rng(42)
    c = 64
    rows = rng.integers(0, 10**9, c)
    rows[:8] = rows[0]  # guarantee at least one contested row
    parents = rng.integers(0, 10**6, c)
    roots = rng.integers(0, 10**6, c)
    k = -parents if sr.mode == "max" else parents
    assert _reduce_scatter(rows, parents, roots, k.astype(np.int64)) is None
    got = reduce_candidates(rows, parents, roots, sr)
    want = _lexsort_reference(rows, parents.astype(np.int64), roots.astype(np.int64), sr)
    for g, w in zip(got, want):
        assert np.array_equal(g, w)


def test_scatter_fallback_on_huge_keys():
    """Keys too large to pack alongside the position also decline."""
    from repro.sparse.semiring import _reduce_scatter

    rows = np.arange(8, dtype=np.int64)
    huge = np.full(8, np.iinfo(np.int64).max // 4, dtype=np.int64)
    assert _reduce_scatter(rows, huge, huge, huge) is None
    r, p, t = reduce_candidates(rows, huge, huge, SR_MIN_PARENT)
    assert np.array_equal(r, rows) and np.array_equal(p, huge)


def test_scatter_single_candidate_and_negative_free():
    r, p, t = reduce_candidates(np.array([7]), np.array([3]), np.array([9]))
    assert (r.tolist(), p.tolist(), t.tolist()) == ([7], [3], [9])
