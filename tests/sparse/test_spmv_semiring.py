"""Semiring SpMV: the Fig. 2 worked example and CSC/DCSC agreement."""

import numpy as np
import pytest

from repro.sparse import (
    COO,
    CSC,
    DCSC,
    SR_MAX_PARENT,
    SR_MIN_PARENT,
    SR_MIN_ROOT,
    SR_RAND_PARENT,
    SR_RAND_ROOT,
    Semiring,
    VertexFrontier,
)
from repro.sparse.semiring import reduce_candidates


def fig2_matrix():
    """The paper's Fig. 2 bipartite graph: rows r1..r5, cols c1..c5 (0-based
    here).  Edges chosen to exercise multi-candidate reduction: row 1 is
    adjacent to frontier columns 0, 1 and 4."""
    edges = [
        (0, 0), (1, 0),
        (1, 1), (2, 1),
        (2, 2), (3, 2),
        (1, 4), (3, 4), (4, 4),
        (4, 3),
    ]
    return CSC.from_coo(COO.from_edges(5, 5, edges))


def unmatched_frontier():
    # initial frontier: unmatched columns 0, 1, 4 with parent=root=self
    return VertexFrontier.roots_of_self(5, np.array([0, 1, 4]))


def test_spmv_min_parent_fig2():
    a = fig2_matrix()
    fr = a.spmv_frontier(unmatched_frontier(), SR_MIN_PARENT)
    # Reached rows: 0 (from c0), 1 (c0,c1,c4 -> min parent c0),
    # 2 (c1), 3 (c4), 4 (c4)
    assert fr.idx.tolist() == [0, 1, 2, 3, 4]
    assert fr.parent.tolist() == [0, 0, 1, 4, 4]
    assert fr.root.tolist() == [0, 0, 1, 4, 4]


def test_spmv_max_parent():
    a = fig2_matrix()
    fr = a.spmv_frontier(unmatched_frontier(), SR_MAX_PARENT)
    assert fr.parent.tolist() == [0, 4, 1, 4, 4]


def test_spmv_rand_parent_is_valid_choice():
    a = fig2_matrix()
    rng = np.random.default_rng(7)
    fr = a.spmv_frontier(unmatched_frontier(), SR_RAND_PARENT, rng)
    assert fr.idx.tolist() == [0, 1, 2, 3, 4]
    # row 1's parent must be one of its adjacent frontier columns
    assert fr.parent[1] in (0, 1, 4)
    # every winner's root equals its parent here (initial frontier)
    assert np.array_equal(fr.parent, fr.root)


def test_spmv_rand_requires_rng():
    a = fig2_matrix()
    with pytest.raises(ValueError):
        a.spmv_frontier(unmatched_frontier(), SR_RAND_ROOT, rng=None)


def test_spmv_rand_parent_distribution():
    """Row 1 has candidates {0, 1, 4}: over many seeds each must appear."""
    a = fig2_matrix()
    seen = set()
    for seed in range(40):
        fr = a.spmv_frontier(unmatched_frontier(), SR_RAND_PARENT, np.random.default_rng(seed))
        seen.add(int(fr.parent[1]))
    assert seen == {0, 1, 4}


def test_spmv_roots_inherited_not_recomputed():
    """When the frontier's roots differ from its indices, winners must carry
    the inherited root."""
    a = fig2_matrix()
    fc = VertexFrontier(5, np.array([1]), np.array([1]), np.array([40 % 5]))  # root=0
    fr = a.spmv_frontier(fc, SR_MIN_PARENT)
    assert fr.idx.tolist() == [1, 2]
    assert fr.parent.tolist() == [1, 1]
    assert fr.root.tolist() == [0, 0]


def test_spmv_empty_frontier():
    a = fig2_matrix()
    fr = a.spmv_frontier(VertexFrontier.empty(5))
    assert fr.is_empty()


def test_spmv_count_is_frontier_degree_sum():
    a = fig2_matrix()
    fc = unmatched_frontier()
    assert a.spmv_count(fc) == 2 + 2 + 3  # deg(c0)+deg(c1)+deg(c4)


def test_min_root_semiring():
    # Two frontier cols with swapped roots: minRoot must pick by root.
    a = fig2_matrix()
    fc = VertexFrontier(5, np.array([0, 1]), np.array([0, 1]), np.array([9 % 5, 0]))
    fr = a.spmv_frontier(fc, SR_MIN_ROOT)
    # row 1 adjacent to c0 (root 4) and c1 (root 0): minRoot -> c1
    assert fr.parent[fr.idx.tolist().index(1)] == 1


@pytest.mark.parametrize("sr", [SR_MIN_PARENT, SR_MAX_PARENT, SR_MIN_ROOT])
def test_csc_and_dcsc_spmv_agree(sr):
    rng = np.random.default_rng(3)
    coo = COO(50, 80, rng.integers(0, 50, 400), rng.integers(0, 80, 400))
    csc = CSC.from_coo(coo)
    dcsc = DCSC.from_coo(coo)
    fidx = np.unique(rng.integers(0, 80, 20))
    fc = VertexFrontier.roots_of_self(80, fidx)
    f1 = csc.spmv_frontier(fc, sr)
    f2 = dcsc.spmv_frontier(fc, sr)
    assert np.array_equal(f1.idx, f2.idx)
    assert np.array_equal(f1.parent, f2.parent)
    assert np.array_equal(f1.root, f2.root)
    assert csc.spmv_count(fc) == dcsc.spmv_count(fc)


def test_dcsc_spmv_on_columns_absent_from_block():
    """Frontier columns that are empty in this block contribute nothing."""
    coo = COO.from_edges(4, 100, [(0, 10), (1, 20)])
    d = DCSC.from_coo(coo)
    fc = VertexFrontier.roots_of_self(100, np.array([5, 10, 50]))
    fr = d.spmv_frontier(fc)
    assert fr.idx.tolist() == [0]
    assert fr.parent.tolist() == [10]
    assert d.spmv_count(fc) == 1


def test_reduce_candidates_empty():
    e = np.empty(0, np.int64)
    r, p, t = reduce_candidates(e, e, e)
    assert r.size == p.size == t.size == 0


def test_semiring_validation():
    with pytest.raises(ValueError):
        Semiring("bad", by="mate", mode="min")
    with pytest.raises(ValueError):
        Semiring("bad", by="parent", mode="median")
    assert SR_MIN_PARENT.deterministic
    assert not SR_RAND_PARENT.deterministic


# -- the O(c) scatter fast path of reduce_candidates -------------------------


def _lexsort_reference(rows, parents, roots, semiring):
    """The pre-fast-path reduction: stable lexsort + first-per-row."""
    key = parents if semiring.by == "parent" else roots
    k = -key if semiring.mode == "max" else key
    order = np.lexsort((k, rows))
    rows, parents, roots = rows[order], parents[order], roots[order]
    first = np.empty(rows.size, dtype=bool)
    first[0] = True
    np.not_equal(rows[1:], rows[:-1], out=first[1:])
    return rows[first], parents[first], roots[first]


@pytest.mark.parametrize("sr", [SR_MIN_PARENT, SR_MAX_PARENT, SR_MIN_ROOT])
@pytest.mark.parametrize("seed", range(6))
def test_scatter_fast_path_matches_lexsort(sr, seed):
    """Dense row ranges (the hot path) must yield the lexsort's winners,
    including its first-arrival tie-breaking, bit for bit."""
    rng = np.random.default_rng(seed)
    c = int(rng.integers(1, 400))
    rows = rng.integers(0, max(1, c // 2), c)  # many ties per row
    parents = rng.integers(0, 50, c)           # many equal keys too
    roots = rng.integers(0, 50, c)
    got = reduce_candidates(rows, parents, roots, sr)
    want = _lexsort_reference(
        rows.astype(np.int64), parents.astype(np.int64), roots.astype(np.int64), sr
    )
    for g, w in zip(got, want):
        assert np.array_equal(g, w)


@pytest.mark.parametrize("sr", [SR_MIN_PARENT, SR_MAX_PARENT])
def test_scatter_fallback_on_wide_rows(sr):
    """Row ids spread over a huge range refuse the dense scratch and fall
    back to the lexsort — winners must be identical either way."""
    from repro.sparse.semiring import _reduce_scatter

    rng = np.random.default_rng(42)
    c = 64
    rows = rng.integers(0, 10**9, c)
    rows[:8] = rows[0]  # guarantee at least one contested row
    parents = rng.integers(0, 10**6, c)
    roots = rng.integers(0, 10**6, c)
    k = -parents if sr.mode == "max" else parents
    assert _reduce_scatter(rows, parents, roots, k.astype(np.int64)) is None
    got = reduce_candidates(rows, parents, roots, sr)
    want = _lexsort_reference(rows, parents.astype(np.int64), roots.astype(np.int64), sr)
    for g, w in zip(got, want):
        assert np.array_equal(g, w)


def test_scatter_fallback_on_huge_keys():
    """Keys too large to pack alongside the position also decline."""
    from repro.sparse.semiring import _reduce_scatter

    rows = np.arange(8, dtype=np.int64)
    huge = np.full(8, np.iinfo(np.int64).max // 4, dtype=np.int64)
    assert _reduce_scatter(rows, huge, huge, huge) is None
    r, p, t = reduce_candidates(rows, huge, huge, SR_MIN_PARENT)
    assert np.array_equal(r, rows) and np.array_equal(p, huge)


def test_scatter_single_candidate_and_negative_free():
    r, p, t = reduce_candidates(np.array([7]), np.array([3]), np.array([9]))
    assert (r.tolist(), p.tolist(), t.tolist()) == ([7], [3], [9])


# -- float-keyed payloads: the auction engine's (bid, bidder) pairs ----------


def test_float_keys_preserve_payload_dtypes():
    """(float64 bid, int64 bidder) pairs must come back in their own dtypes,
    not silently cast to int64 (which would truncate every bid)."""
    rows = np.array([4, 4, 9], dtype=np.int64)
    bids = np.array([1.25, 2.75, 0.5], dtype=np.float64)
    bidders = np.array([17, 3, 8], dtype=np.int64)
    r, p, t = reduce_candidates(rows, bids, bidders, SR_MAX_PARENT)
    assert p.dtype == np.float64 and t.dtype == np.int64
    assert r.tolist() == [4, 9]
    assert p.tolist() == [2.75, 0.5]
    assert t.tolist() == [3, 8]


def test_float_keys_decline_scatter_fast_path():
    """The packed (key, position) scatter is exact only for integer keys;
    float keys must route through the lexsort even on dense row ranges."""
    from repro.sparse.semiring import _reduce_scatter

    rows = np.arange(16, dtype=np.int64)
    bids = np.linspace(0.0, 1.0, 16)
    k = -bids
    assert not np.issubdtype(k.dtype, np.integer)
    # the guard in reduce_candidates keys off the dtype; the scatter itself
    # is never offered a float key.  Integer-valued floats through the full
    # kernel must still win correctly:
    r, p, t = reduce_candidates(rows, bids, np.arange(16), SR_MAX_PARENT)
    assert np.array_equal(p, bids)
    # and an int64 view of the same keys does use the scatter:
    ki = np.arange(16, dtype=np.int64)
    assert _reduce_scatter(rows, ki, ki, ki) is not None


@pytest.mark.parametrize("seed", range(4))
def test_float_and_integer_keys_agree_on_integral_values(seed):
    """Integer-valued float keys must pick the same winners as the same keys
    expressed as int64 — the two code paths (lexsort vs scatter) agree."""
    rng = np.random.default_rng(seed)
    c = 300
    rows = rng.integers(0, 60, c)
    keys = rng.integers(0, 40, c)
    roots = rng.integers(0, 1000, c)
    for sr in (SR_MIN_PARENT, SR_MAX_PARENT):
        ri, pi, ti = reduce_candidates(rows, keys, roots, sr)
        rf, pf, tf = reduce_candidates(rows, keys.astype(np.float64), roots, sr)
        assert np.array_equal(ri, rf)
        assert np.array_equal(pi.astype(np.float64), pf)
        assert np.array_equal(ti, tf)


def test_float_key_ties_resolve_to_first_arrival():
    """Equal float bids: the stable lexsort keeps the earliest candidate,
    which resolve_bids exploits (bidders pre-sorted => min-bidder wins)."""
    rows = np.array([2, 2, 2], dtype=np.int64)
    bids = np.array([5.5, 5.5, 5.5])
    bidders = np.array([30, 10, 20], dtype=np.int64)
    r, p, t = reduce_candidates(rows, bids, bidders, SR_MAX_PARENT)
    assert t.tolist() == [30]  # first arrival, not min value


def test_empty_reduction_preserves_payload_dtypes():
    r, p, t = reduce_candidates(
        np.empty(0, np.int64), np.empty(0, np.float64), np.empty(0, np.int32)
    )
    assert r.dtype == np.int64 and p.dtype == np.float64 and t.dtype == np.int32


def test_resolve_bids_ties_go_to_min_bidder():
    """The auction wrapper pre-sorts by bidder id, so equal highest bids on
    one item deterministically go to the smallest bidder — across any input
    order."""
    from repro.matching.auction import resolve_bids

    rows = np.array([5, 5, 5, 7], dtype=np.int64)
    bids = np.array([2.0, 2.0, 1.0, 3.5])
    bidders = np.array([42, 6, 1, 9], dtype=np.int64)
    r, b, w = resolve_bids(rows, bids, bidders)
    assert r.tolist() == [5, 7]
    assert b.tolist() == [2.0, 3.5]
    assert w.tolist() == [6, 9]
    # permuting the candidates must not change the winners
    perm = np.array([3, 1, 0, 2])
    r2, b2, w2 = resolve_bids(rows[perm], bids[perm], bidders[perm])
    assert np.array_equal(r, r2) and np.array_equal(b, b2) and np.array_equal(w, w2)
