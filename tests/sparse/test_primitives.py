"""Table I primitives — including the paper's own worked examples."""

import numpy as np
import pytest

from repro.sparse import SparseVec
from repro.sparse.primitives import gather_dense, ind, invert, prune, prune_mask, select, set_dense
from repro.sparse.spvec import NULL


def sv(dense, missing=0):
    """Sparse vector from the paper's dense-with-zeros notation."""
    dense = np.asarray(dense, dtype=np.int64)
    idx = np.flatnonzero(dense != missing)
    return SparseVec(dense.size, idx, dense[idx])


# -- IND -------------------------------------------------------------------------

def test_ind_paper_example():
    # x = [3, 0, 2, 2, 0] -> IND(x) = [0, 2, 3]  (paper writes 1-based [1,3,4])
    x = sv([3, 0, 2, 2, 0])
    assert ind(x).tolist() == [0, 2, 3]


def test_ind_empty():
    assert ind(SparseVec.empty(4)).size == 0


# -- SELECT ------------------------------------------------------------------------

def test_select_paper_example():
    # x = [3,0,2,2,0], y = [1,-1,-1,2,1], keep where y == -1 -> [0,0,2,0,0]
    x = sv([3, 0, 2, 2, 0])
    y = np.array([1, -1, -1, 2, 1], dtype=np.int64)
    z = select(x, y, lambda v: v == -1)
    assert z.to_dense(missing=0).tolist() == [0, 0, 2, 0, 0]


def test_select_touches_only_sparse_entries():
    x = SparseVec(10, np.array([2, 7]), np.array([5, 6]))
    y = np.arange(10, dtype=np.int64)
    z = select(x, y, lambda v: v > 3)
    assert z.idx.tolist() == [7]
    assert z.val.tolist() == [6]


def test_select_length_mismatch():
    with pytest.raises(ValueError):
        select(sv([1, 0]), np.zeros(3, dtype=np.int64), lambda v: v == 0)


def test_select_empty_input():
    z = select(SparseVec.empty(5), np.zeros(5, dtype=np.int64), lambda v: v == 0)
    assert z.is_empty()


# -- SET ---------------------------------------------------------------------------

def test_set_dense_writes_at_sparse_indices():
    y = np.full(5, NULL, dtype=np.int64)
    x = SparseVec(5, np.array([1, 3]), np.array([7, 9]))
    set_dense(y, x)
    assert y.tolist() == [NULL, 7, NULL, 9, NULL]


def test_set_dense_length_mismatch():
    with pytest.raises(ValueError):
        set_dense(np.zeros(3, dtype=np.int64), sv([1, 0]))


def test_gather_dense_reads_through_values():
    # result[i] = y[x[i]]: jump from row vertices to their stored pointers.
    x = SparseVec(4, np.array([0, 2]), np.array([3, 1]))
    y = np.array([10, 11, 12, 13], dtype=np.int64)
    z = gather_dense(y, x)
    assert z.idx.tolist() == [0, 2]
    assert z.val.tolist() == [13, 11]


def test_gather_dense_drops_missing():
    x = SparseVec(3, np.array([0, 1]), np.array([2, 0]))
    y = np.array([NULL, 5, 7], dtype=np.int64)
    z = gather_dense(y, x)
    assert z.idx.tolist() == [0]
    assert z.val.tolist() == [7]


# -- INVERT -------------------------------------------------------------------------

def test_invert_paper_example():
    # x = [3,0,2,2,0]: entries (0:3), (2:2), (3:2)
    # INVERT swaps: z[3]=0, z[2]=2 (first index wins for value 2)
    x = sv([3, 0, 2, 2, 0])
    z = invert(x)
    assert z.idx.tolist() == [2, 3]
    assert z.val.tolist() == [2, 0]


def test_invert_first_index_wins_on_repeats():
    x = SparseVec(6, np.array([1, 2, 4]), np.array([5, 5, 5]))
    z = invert(x)
    assert z.idx.tolist() == [5]
    assert z.val.tolist() == [1]


def test_invert_is_self_inverse_when_values_unique():
    x = SparseVec(6, np.array([0, 2, 5]), np.array([4, 1, 3]))
    z = invert(invert(x))
    assert z == x


def test_invert_with_explicit_length():
    x = SparseVec(3, np.array([0, 1]), np.array([7, 2]))
    z = invert(x, length=10)
    assert z.n == 10
    assert z.idx.tolist() == [2, 7]


def test_invert_rejects_out_of_range_values():
    x = SparseVec(3, np.array([0]), np.array([5]))
    with pytest.raises(ValueError):
        invert(x)


def test_invert_empty():
    assert invert(SparseVec.empty(4)).is_empty()


# -- PRUNE --------------------------------------------------------------------------

def test_prune_paper_example():
    # x = [0,0,5,0,2], q = [2,0,0,4,1] -> PRUNE(x, q) = [0,0,5,0,0]
    x = sv([0, 0, 5, 0, 2])
    q = sv([2, 0, 0, 4, 1])
    z = prune(x, q)
    assert z.to_dense(missing=0).tolist() == [0, 0, 5, 0, 0]


def test_prune_by_value_not_index():
    x = SparseVec(4, np.array([0, 1]), np.array([9, 3]))
    q = SparseVec(4, np.array([3]), np.array([9]))
    z = prune(x, q)
    assert z.idx.tolist() == [1]


def test_prune_with_empty_q_is_identity():
    x = sv([1, 0, 2])
    z = prune(x, SparseVec.empty(3))
    assert z == x


def test_prune_mask_matches_prune():
    x = sv([0, 0, 5, 0, 2])
    q = sv([2, 0, 0, 4, 1])
    mask = prune_mask(x.val, q.val)
    assert x.idx[mask].tolist() == prune(x, q).idx.tolist()


# -- SparseVec container --------------------------------------------------------------

def test_sparsevec_dense_round_trip():
    d = np.array([NULL, 4, NULL, 0, 7], dtype=np.int64)
    v = SparseVec.from_dense(d)
    assert v.nnz == 3
    assert v.to_dense().tolist() == d.tolist()


def test_sparsevec_requires_sorted_indices():
    with pytest.raises(ValueError):
        SparseVec(5, np.array([3, 1]), np.array([0, 0]))


def test_sparsevec_rejects_out_of_range_index():
    with pytest.raises(ValueError):
        SparseVec(3, np.array([5]), np.array([0]))


def test_sparsevec_equality_and_copy():
    v = sv([1, 0, 2])
    w = v.copy()
    assert v == w
    w.val[0] = 99
    assert v != w
