"""Matrix containers: COO building, CSC/DCSC equivalence, format invariants."""

import numpy as np
import pytest

from repro.sparse import COO, CSC, DCSC


def small():
    # The paper's Fig. 2 example graph: 4 rows x 5 cols.
    edges = [(0, 0), (0, 3), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2), (3, 4), (2, 4)]
    return COO.from_edges(4, 5, edges)


# -- COO -----------------------------------------------------------------------

def test_coo_basic_properties():
    a = small()
    assert a.shape == (4, 5)
    assert a.nnz == 9
    assert a.row_degrees().tolist() == [2, 2, 3, 2]
    assert a.col_degrees().tolist() == [2, 2, 2, 1, 2]


def test_coo_dedup():
    a = COO.from_edges(2, 2, [(0, 0), (0, 0), (1, 1), (0, 0)])
    assert a.nnz == 2


def test_coo_rejects_out_of_range():
    with pytest.raises(ValueError):
        COO.from_edges(2, 2, [(0, 5)])
    with pytest.raises(ValueError):
        COO.from_edges(2, 2, [(-1, 0)])


def test_coo_transpose_round_trip():
    a = small()
    t = a.transpose()
    assert t.shape == (5, 4)
    assert t.transpose() == a


def test_coo_permuted_preserves_structure():
    a = small()
    rp = np.array([2, 0, 3, 1])
    cp = np.array([4, 3, 2, 1, 0])
    b = a.permuted(rp, cp)
    assert b.nnz == a.nnz
    # edge (0,0) became (2,4)
    pairs = set(zip(b.rows.tolist(), b.cols.tolist()))
    assert (2, 4) in pairs


def test_coo_block_extraction():
    a = small()
    blk = a.block(0, 2, 0, 2)  # rows 0-1, cols 0-1
    pairs = set(zip(blk.rows.tolist(), blk.cols.tolist()))
    assert pairs == {(0, 0), (1, 0), (1, 1)}
    assert blk.shape == (2, 2)


def test_coo_empty_and_identity():
    assert COO.empty(3, 4).nnz == 0
    i = COO.identity(3)
    assert i.nnz == 3 and i.shape == (3, 3)


# -- CSC -----------------------------------------------------------------------

def test_csc_round_trip():
    a = small()
    csc = CSC.from_coo(a)
    assert csc.nnz == a.nnz
    assert csc.to_coo() == a


def test_csc_columns_sorted():
    csc = CSC.from_coo(small())
    for j in range(csc.ncols):
        col = csc.column(j)
        assert np.all(np.diff(col) > 0)


def test_csc_degrees():
    csc = CSC.from_coo(small())
    assert csc.col_degrees().tolist() == [2, 2, 2, 1, 2]
    assert csc.row_degrees().tolist() == [2, 2, 3, 2]


def test_csc_transpose_is_cached_and_correct():
    csc = CSC.from_coo(small())
    t = csc.transpose()
    assert t.shape == (5, 4)
    assert t.transpose() is csc
    assert t.to_coo() == small().transpose()


def test_csc_validation():
    with pytest.raises(ValueError):
        CSC(2, 2, np.array([0, 1]), np.array([0]))  # wrong indptr length
    with pytest.raises(ValueError):
        CSC(2, 2, np.array([0, 2, 1]), np.array([0, 1]))  # decreasing
    with pytest.raises(ValueError):
        CSC(2, 2, np.array([0, 1, 2]), np.array([0, 5]))  # row out of range


def test_csc_neighbor_of_each():
    csc = CSC.from_coo(small())
    cols = np.array([0, 2, 4])
    assert csc.neighbor_of_each(cols, "first").tolist() == [0, 2, 2]
    assert csc.neighbor_of_each(cols, "last").tolist() == [1, 3, 3]
    with pytest.raises(ValueError):
        csc.neighbor_of_each(cols, "middle")


# -- DCSC ----------------------------------------------------------------------

def test_dcsc_round_trip():
    a = small()
    d = DCSC.from_coo(a)
    assert d.nnz == a.nnz
    assert d.to_coo() == a


def test_dcsc_skips_empty_columns():
    a = COO.from_edges(4, 1000, [(0, 5), (1, 5), (2, 900)])
    d = DCSC.from_coo(a)
    assert d.nzc == 2
    assert d.jc.tolist() == [5, 900]
    # Memory is O(nnz + nzc), far below the 1001 words CSC's indptr needs.
    assert d.memory_words() == 2 + 3 + 3


def test_dcsc_hypersparse_memory_advantage():
    """A block with nnz << ncols must beat CSC storage — the reason CombBLAS
    (and we) use DCSC for 2D blocks."""
    ncols = 100_000
    a = COO.from_edges(100, ncols, [(i, i * 997 % ncols) for i in range(50)])
    d = DCSC.from_coo(a)
    csc_words = ncols + 1 + a.nnz
    assert d.memory_words() < csc_words / 100


def test_dcsc_empty_matrix():
    d = DCSC.from_coo(COO.empty(5, 5))
    assert d.nnz == 0 and d.nzc == 0
    assert d.to_coo().nnz == 0


def test_dcsc_degrees():
    d = DCSC.from_coo(small())
    jc, deg = d.col_degrees_compressed()
    assert jc.tolist() == [0, 1, 2, 3, 4]
    assert deg.tolist() == [2, 2, 2, 1, 2]
    assert d.row_degrees().tolist() == [2, 2, 3, 2]


def test_dcsc_validation():
    with pytest.raises(ValueError):
        DCSC(2, 2, np.array([0, 0]), np.array([0, 1, 2]), np.array([0, 1]))  # dup jc
    with pytest.raises(ValueError):
        DCSC(2, 2, np.array([0]), np.array([0, 0]), np.empty(0, np.int64))  # empty jc col


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_csc_dcsc_agree_on_random_matrices(seed):
    rng = np.random.default_rng(seed)
    m = 300
    rows = rng.integers(0, 40, m)
    cols = rng.integers(0, 60, m)
    a = COO(40, 60, rows, cols)
    assert CSC.from_coo(a).to_coo() == DCSC.from_coo(a).to_coo()


# -- the cached row-major mirror (bottom-up traversal support) ----------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dcsc_csr_mirror_roundtrips(seed):
    """The mirror holds exactly the block's edges, columns ascending within
    each row."""
    rng = np.random.default_rng(seed)
    coo = COO(30, 50, rng.integers(0, 30, 200), rng.integers(0, 50, 200))
    d = DCSC.from_coo(coo)
    row_ptr, col_idx = d.csr_mirror()
    assert row_ptr.size == d.nrows + 1 and col_idx.size == d.nnz
    mirror_rows = np.repeat(np.arange(d.nrows), np.diff(row_ptr))
    ref = d.to_coo()
    order = np.lexsort((ref.cols, ref.rows))
    assert np.array_equal(mirror_rows, ref.rows[order])
    assert np.array_equal(col_idx, ref.cols[order])
    # within-row column ascent is what downstream tie-breaking relies on
    same_row = mirror_rows[1:] == mirror_rows[:-1]
    assert np.all(col_idx[1:][same_row] > col_idx[:-1][same_row])


def test_dcsc_csr_mirror_and_degrees_are_cached():
    d = DCSC.from_coo(small())
    assert d.csr_mirror() is d.csr_mirror()
    assert d.row_degrees() is d.row_degrees()
    assert np.array_equal(d.row_degrees(), np.diff(d.csr_mirror()[0]))


def test_dcsc_explode_rows_matches_bruteforce():
    rng = np.random.default_rng(7)
    coo = COO(25, 40, rng.integers(0, 25, 150), rng.integers(0, 40, 150))
    d = DCSC.from_coo(coo)
    ref = d.to_coo()
    subset = np.unique(rng.integers(0, 25, 10))
    rows, cols = d.explode_rows(subset)
    want = sorted(
        (int(r), int(c)) for r, c in zip(ref.rows, ref.cols) if r in set(subset.tolist())
    )
    assert sorted(zip(rows.tolist(), cols.tolist())) == want
    # rows with no edges contribute nothing; empty subset is empty
    er, ec = d.explode_rows(np.empty(0, np.int64))
    assert er.size == ec.size == 0


def test_csc_row_degrees_cached_and_correct():
    a = CSC.from_coo(small())
    assert a.row_degrees() is a.row_degrees()
    assert a.row_degrees().tolist() == [2, 2, 3, 2]
    assert np.array_equal(a.row_degrees(), a.transpose().col_degrees())
