"""Suppression mechanics: inline ``# repro: noqa`` and baseline files."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_source, load_baseline, write_baseline
from repro.analysis.suppress import noqa_map

REPO_ROOT = Path(__file__).resolve().parents[2]

FLAGGED = textwrap.dedent("""
    def main(comm):
        if comm.rank == 0:
            comm.allreduce(1)
""")


def test_bare_noqa_suppresses_everything_on_the_line():
    src = FLAGGED.replace("comm.allreduce(1)",
                          "comm.allreduce(1)  # repro: noqa")
    assert lint_source(src) == []


def test_coded_noqa_suppresses_only_listed_codes():
    src = FLAGGED.replace("comm.allreduce(1)",
                          "comm.allreduce(1)  # repro: noqa[SPMD101]")
    assert lint_source(src) == []
    wrong_code = FLAGGED.replace("comm.allreduce(1)",
                                 "comm.allreduce(1)  # repro: noqa[SPMD401]")
    assert [f.code for f in lint_source(wrong_code)] == ["SPMD101"]


def test_noqa_only_applies_to_its_own_line():
    src = "# repro: noqa[SPMD101]\n" + FLAGGED
    assert [f.code for f in lint_source(src)] == ["SPMD101"]


def test_noqa_inside_a_string_literal_is_inert():
    src = FLAGGED.replace(
        "comm.allreduce(1)",
        'comm.allreduce("repro: noqa[SPMD101]")')
    assert [f.code for f in lint_source(src)] == ["SPMD101"]


def test_noqa_map_parses_codes_case_insensitively():
    m = noqa_map("x = 1  # repro: NOQA[spmd101, SPMD201]\n")
    assert m == {1: frozenset({"SPMD101", "SPMD201"})}


# ------------------------------------------------------------------ baseline


def test_baseline_filters_by_path_code_and_function(tmp_path):
    bl = tmp_path / "baseline.json"
    bl.write_text(json.dumps({"findings": [
        {"path": "pkg/mod.py", "code": "SPMD101", "function": "main",
         "justification": "known"},
    ]}))
    baseline = load_baseline(bl)
    fs = lint_source(FLAGGED, path="/abs/prefix/pkg/mod.py")
    assert baseline.filter(fs) == []
    # a different function name no longer matches
    other = lint_source(FLAGGED.replace("def main", "def other"),
                        path="/abs/prefix/pkg/mod.py")
    assert baseline.filter(other) == other


def test_baseline_does_not_match_unrelated_path_suffix(tmp_path):
    bl = tmp_path / "baseline.json"
    bl.write_text(json.dumps({"findings": [
        {"path": "mod.py", "code": "SPMD101", "function": "main"},
    ]}))
    baseline = load_baseline(bl)
    fs = lint_source(FLAGGED, path="notmod.py")
    assert baseline.filter(fs) == fs


def test_write_then_load_baseline_round_trips(tmp_path):
    fs = lint_source(FLAGGED, path="pkg/mod.py")
    bl = tmp_path / "baseline.json"
    write_baseline(bl, fs)
    assert load_baseline(bl).filter(fs) == []


def test_malformed_baseline_rejected(tmp_path):
    bl = tmp_path / "bad.json"
    bl.write_text(json.dumps({"findings": [{"code": "SPMD101"}]}))
    with pytest.raises(ValueError):
        load_baseline(bl)


# ------------------------------------------------- the committed self-gate


def test_committed_baseline_covers_the_whole_tree():
    """The CI gate: src + examples lint clean modulo the committed baseline,
    and every baseline entry carries a justification."""
    from repro.analysis import lint_paths

    baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
    for entry in baseline.entries:
        assert entry.get("justification"), f"unjustified baseline entry {entry}"
    findings = lint_paths([str(REPO_ROOT / "src" / "repro"),
                           str(REPO_ROOT / "examples")])
    assert baseline.filter(findings) == []


def test_committed_baseline_has_no_stale_entries():
    """Every baseline entry still matches a real finding (no dead weight)."""
    from repro.analysis import lint_paths

    baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
    findings = lint_paths([str(REPO_ROOT / "src" / "repro"),
                           str(REPO_ROOT / "examples")])
    matched = {(e["path"], e["code"], e["function"])
               for e in baseline.entries
               for f in findings if baseline.matches(f)
               if f.code == e["code"] and f.function == e.get("function", "")}
    for e in baseline.entries:
        key = (e["path"], e["code"], e["function"])
        assert key in matched, f"stale baseline entry: {e}"
