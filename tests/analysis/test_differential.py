"""Differential tests: every seeded lint fixture's bug is real.

The acceptance bar for the analyzer is that its findings are not
hypothetical: the SPMD5xx fixtures genuinely hang the simulated fabric
(caught by the timeout backstop, which names the blocked rank the linter
predicted), the SPMD6xx fixtures genuinely produce divergent values
across ranks, and the SPMD7xx fixtures genuinely fail to pickle.  Each
test pairs the runtime reproduction with the static finding at the same
source location.
"""

import pickle
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_file
from repro.runtime import DeadlockError, spmd

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = REPO_ROOT / "examples" / "buggy_spmd.py"

sys.path.insert(0, str(REPO_ROOT / "examples"))
import buggy_spmd  # noqa: E402


def finding(code, function):
    for f in lint_file(FIXTURE):
        if f.code == code and f.function == function:
            return f
    raise AssertionError(f"no {code} finding in {function}")


def fixture_line(substring):
    src = FIXTURE.read_text().splitlines()
    for i, line in enumerate(src, start=1):
        if substring in line:
            return i
    raise AssertionError(f"{substring!r} not in fixture")


# ------------------------------------------------------------ SPMD501/502


def test_lonely_recv_deadlocks_and_is_flagged_at_the_recv():
    """SPMD501: the fixture hangs the fabric; the timeout backstop names
    rank 1 (the blocked receiver) and the static finding sits on the exact
    recv call."""
    with pytest.raises(DeadlockError) as exc:
        spmd(2, buggy_spmd.lonely_recv, timeout=0.4, join_grace=2.0)
    msg = str(exc.value)
    assert "rank 1" in msg, "backstop must name the blocked rank"
    assert "recv(source=0, tag=9)" in msg

    f = finding("SPMD501", "lonely_recv")
    assert f.line == fixture_line("comm.recv(0, tag=9)")
    assert "rank 1" in f.message and "tag=9" in f.message


def test_ring_recv_before_send_deadlocks_and_is_flagged_at_the_recv():
    """SPMD502: all ranks block in recv with every matching send stuck
    behind another blocked recv — the linter reports the cycle at the same
    recv the fabric times out in."""
    with pytest.raises(DeadlockError) as exc:
        spmd(2, buggy_spmd.ring_recv_before_send, timeout=0.4, join_grace=2.0)
    assert "recv" in str(exc.value)

    f = finding("SPMD502", "ring_recv_before_send")
    assert f.line == fixture_line("comm.recv(left, tag=7)")
    assert "cyclic" in f.message


def test_fixed_ring_runs_clean():
    """The canonical fix (parity-ordered sends) both lints clean and runs:
    the same communication pattern, minus the bug."""

    def fixed_ring(comm):
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        if comm.rank % 2 == 0:
            comm.send(right, comm.rank, tag=7)
            got = comm.recv(left, tag=7)
        else:
            got = comm.recv(left, tag=7)
            comm.send(right, comm.rank, tag=7)
        return got

    result = spmd(4, fixed_ring, timeout=5.0)
    assert sorted(result.values) == [0, 1, 2, 3]


# --------------------------------------------------------------- SPMD602


def test_clock_seeded_mates_diverge_across_ranks():
    """SPMD602: each rank reads a different nanosecond, so the 'replicated'
    mate vectors disagree.  A few retries guard against the (astronomically
    unlikely) case of two ranks reading identical counters."""
    for _ in range(5):
        result = spmd(4, buggy_spmd.clock_seeded_mates, 997, timeout=10.0)
        gathered = result[0]
        if any(g != gathered[0] for g in gathered):
            break
    else:
        pytest.fail("wall-clock-seeded mates never diverged across ranks")

    f = finding("SPMD602", "clock_seeded_mates")
    assert f.line == fixture_line("time.perf_counter_ns()")


# --------------------------------------------------------------- SPMD702/703


def test_lambda_payload_does_not_pickle():
    """SPMD702: the payload the fixture ships through bcast is exactly the
    kind of object a process backend would have to pickle — and cannot."""
    with pytest.raises(Exception) as exc:
        pickle.dumps(lambda u, v: u ^ v)
    assert isinstance(exc.value, (pickle.PicklingError, TypeError, AttributeError))
    finding("SPMD702", "lambda_payload")


def test_closure_launcher_entry_point_does_not_pickle():
    """SPMD703: a closure over local state cannot be shipped to worker
    processes; module-level functions (the fix) can."""

    def make_closure():
        captured = {"data": 123}

        def rank_main(comm):
            return captured

        return rank_main

    with pytest.raises(Exception):
        pickle.dumps(make_closure())
    # the fixed pattern — a module-level function — pickles fine
    pickle.dumps(buggy_spmd.divergent_reduction)
    finding("SPMD703", "closure_launcher")


# ------------------------------------------------------------ SPMD101 (interproc)


def test_divergent_via_helper_deadlocks_at_runtime():
    """The interprocedural SPMD101 fixture is a real deadlock, not just a
    lint finding: non-root ranks never enter the helper's allreduce."""
    with pytest.raises(Exception) as exc:
        spmd(2, buggy_spmd.divergent_via_helper, timeout=0.4, join_grace=2.0)
    assert "allreduce" in str(exc.value) or "Deadlock" in type(exc.value).__name__

    f = finding("SPMD101", "divergent_via_helper")
    assert "via _root_summary->_fold" in f.message
