"""Property tests for the analyzer's CFG builder.

The contract the rules rely on (:mod:`repro.analysis.cfg`):

* every statement of a function body lands in **exactly one** basic block
  (nested function/class bodies excluded — they get their own CFG);
* edges are consistent: ``b in blocks[s].preds`` iff ``s in blocks[b].succs``,
  and every edge endpoint is a valid block id;
* every statement is either in a block reachable from the entry or reported
  by :meth:`CFG.unreachable_stmts` — "reachable or reported";
* straight-line code (no return/raise/break/continue) has no unreachable
  statements, and the exit block is always reachable (loops may exit).

Hypothesis generates random deeply-nested function bodies from a small
statement grammar and checks the invariants on each.
"""

import ast

from hypothesis import given, settings, strategies as st

from repro.analysis.astutil import own_statements
from repro.analysis.cfg import build_cfg

# ---------------------------------------------------------------- generators

SIMPLE = st.sampled_from([
    "x = 1",
    "y = x + 1",
    "f(x)",
    "comm.barrier()",
    "pass",
])

TERMINATOR = st.sampled_from([
    "return x",
    "raise ValueError('boom')",
    "break",
    "continue",
])


def _indent(lines, by="    "):
    return [by + ln for ln in lines]


def _block(stmts):
    """Render a statement list, guaranteeing it is non-empty."""
    return stmts if stmts else ["pass"]


def compound(children):
    """Strategies for compound statements wrapping generated child bodies."""
    body = st.lists(children, min_size=0, max_size=3).map(
        lambda groups: [ln for g in groups for ln in g])

    def render_if(parts):
        a, b = parts
        out = ["if cond:"] + _indent(_block(a))
        if b:
            out += ["else:"] + _indent(b)
        return out

    def render_loop(parts):
        kw, a = parts
        return [f"{kw}:"] + _indent(_block(a))

    def render_try(parts):
        a, b, c = parts
        out = ["try:"] + _indent(_block(a))
        out += ["except ValueError:"] + _indent(_block(b))
        if c:
            out += ["finally:"] + _indent(c)
        return out

    def render_with(parts):
        (a,) = parts
        return ["with ctx() as v:"] + _indent(_block(a))

    return st.one_of(
        st.tuples(body, body).map(render_if),
        st.tuples(
            st.sampled_from(["for i in range(3)", "while cond"]), body
        ).map(render_loop),
        st.tuples(body, body, body).map(render_try),
        st.tuples(body).map(render_with),
    )


STMT = st.recursive(
    st.one_of(SIMPLE.map(lambda s: [s]), TERMINATOR.map(lambda s: [s])),
    compound,
    max_leaves=12,
)

BODIES = st.lists(STMT, min_size=1, max_size=6).map(
    lambda groups: [ln for g in groups for ln in g])


def make_fn(body_lines):
    src = "def fn(comm, x, cond):\n" + "\n".join(_indent(body_lines))
    tree = ast.parse(src)
    return tree.body[0]


# ---------------------------------------------------------------- properties


@settings(max_examples=200, deadline=None)
@given(BODIES)
def test_every_statement_in_exactly_one_block(body_lines):
    fn = make_fn(body_lines)
    cfg = build_cfg(fn)
    placed = cfg.all_stmts()
    # exactly one placement: no statement appears in two blocks
    assert len({id(s) for s in placed}) == len(placed)
    # and the placements cover precisely the function's own statements
    assert {id(s) for s in placed} == {id(s) for s in own_statements(fn)}


@settings(max_examples=200, deadline=None)
@given(BODIES)
def test_edges_are_consistent(body_lines):
    cfg = build_cfg(make_fn(body_lines))
    n = len(cfg.blocks)
    for b in cfg.blocks:
        for s in b.succs:
            assert 0 <= s < n, "dangling successor"
            assert b.id in cfg.blocks[s].preds
        for p in b.preds:
            assert 0 <= p < n, "dangling predecessor"
            assert b.id in cfg.blocks[p].succs


@settings(max_examples=200, deadline=None)
@given(BODIES)
def test_reachable_or_reported(body_lines):
    fn = make_fn(body_lines)
    cfg = build_cfg(fn)
    live = cfg.reachable()
    dead = {id(s) for s in cfg.unreachable_stmts()}
    for b in cfg.blocks:
        for s in b.stmts:
            if b.id in live:
                assert id(s) not in dead
            else:
                assert id(s) in dead
    # the exit is always reachable (loop heads over-approximate with an
    # exit edge, so even `while True` cannot orphan it)
    assert cfg.exit in live


@settings(max_examples=150, deadline=None)
@given(st.lists(st.one_of(SIMPLE.map(lambda s: [s]),
                          compound(SIMPLE.map(lambda s: [s]))),
                min_size=1, max_size=6).map(
                    lambda groups: [ln for g in groups for ln in g]))
def test_straight_line_code_is_fully_reachable(body_lines):
    """Without return/raise/break/continue, nothing is unreachable."""
    cfg = build_cfg(make_fn(body_lines))
    assert cfg.unreachable_stmts() == []


# ------------------------------------------------------------- pinned shapes


def cfg_of(src):
    return build_cfg(ast.parse(src).body[0])


def test_code_after_return_is_unreachable():
    cfg = cfg_of("def f():\n    return 1\n    x = 2\n")
    dead = cfg.unreachable_stmts()
    assert len(dead) == 1 and isinstance(dead[0], ast.Assign)


def test_loop_has_back_edge():
    cfg = cfg_of("def f(n):\n    for i in range(n):\n        g(i)\n")
    head = next(b for b in cfg.blocks if b.stmts
                and isinstance(b.stmts[0], ast.For))
    body = next(b for b in cfg.blocks if b.stmts
                and isinstance(b.stmts[0], ast.Expr))
    assert head.id in body.succs, "loop body must loop back to the head"


def test_break_jumps_past_the_loop():
    cfg = cfg_of(
        "def f(n):\n"
        "    while n:\n"
        "        break\n"
        "        g()\n"
        "    h()\n"
    )
    dead = cfg.unreachable_stmts()
    assert len(dead) == 1
    assert isinstance(dead[0], ast.Expr)
    assert dead[0].value.func.id == "g"


def test_nested_function_bodies_are_excluded():
    cfg = cfg_of(
        "def f(comm):\n"
        "    def inner():\n"
        "        return 1\n"
        "    return inner\n"
    )
    kinds = [type(s).__name__ for s in cfg.all_stmts()]
    assert kinds.count("Return") == 1  # inner's return is not in f's CFG
    assert "FunctionDef" in kinds  # but the def statement itself is
