"""Golden flagged/clean fixture pairs for every rule in the catalogue.

Each rule gets (at least) one minimal source that MUST be flagged and one
near-identical source that MUST stay clean — the pairs pin down both the
detection and the zero-false-positive stance of the engine.
"""

import textwrap

from repro.analysis import lint_source


def run(src):
    return lint_source(textwrap.dedent(src))


def codes(src):
    return [f.code for f in run(src)]


# ------------------------------------------------------- SPMD101 (interproc)


def test_101_flagged_collective_via_helper_under_rank_branch():
    src = """
    def fold(comm, x):
        return comm.allreduce(x)

    def main(comm):
        if comm.rank == 0:
            fold(comm, 1)
    """
    fs = run(src)
    assert [f.code for f in fs] == ["SPMD101"]
    assert "via fold" in fs[0].message
    assert "helper" in fs[0].message
    # anchored at the call site inside main, not inside the helper
    assert fs[0].function == "main"


def test_101_flagged_two_helpers_deep():
    src = """
    def inner(comm):
        comm.barrier()

    def outer(comm):
        inner(comm)

    def main(comm):
        if comm.rank % 2:
            outer(comm)
    """
    fs = run(src)
    assert [f.code for f in fs] == ["SPMD101"]
    assert "outer->inner" in fs[0].message


def test_101_clean_same_helper_on_both_branches():
    src = """
    def fold(comm, x):
        return comm.allreduce(x)

    def main(comm):
        if comm.rank == 0:
            return fold(comm, local)
        else:
            return fold(comm, None)
    """
    assert run(src) == []


def test_101_flagged_early_return_skips_later_collective():
    src = """
    def main(comm):
        if comm.rank == 0:
            return None
        comm.barrier()
    """
    assert codes(src) == ["SPMD101"]


def test_101_clean_early_return_with_matching_collective():
    src = """
    def main(comm):
        if comm.rank == 0:
            comm.bcast(data, root=0)
            return data
        out = comm.bcast(None, root=0)
        return out
    """
    assert run(src) == []


def test_101_clean_raising_branch_is_abort_not_divergence():
    src = """
    def main(comm):
        if comm.rank == 0:
            if bad_input:
                raise ValueError("bad input")
        comm.barrier()
    """
    assert run(src) == []


def test_101_clean_data_dependent_helper_is_indefinite():
    # the helper's collectives depend on data, so the comparison is
    # indefinite -> no finding (zero-false-positive stance)
    src = """
    def maybe_fold(comm, x):
        if x > 0:
            comm.allreduce(x)

    def main(comm):
        if comm.rank == 0:
            maybe_fold(comm, v)
        else:
            maybe_fold(comm, w)
    """
    assert run(src) == []


def test_101_recursive_helpers_do_not_hang_or_flag():
    src = """
    def ping(comm, n):
        if n > 0:
            pong(comm, n - 1)

    def pong(comm, n):
        ping(comm, n)

    def main(comm):
        if comm.rank == 0:
            ping(comm, 3)
    """
    assert run(src) == []


# ------------------------------------------------------------------- SPMD102


def test_102_flagged_collective_in_rank_loop_via_helper():
    src = """
    def step(comm):
        comm.barrier()

    def main(comm):
        for _ in range(comm.rank + 1):
            step(comm)
    """
    fs = run(src)
    assert [f.code for f in fs] == ["SPMD102"]
    assert "barrier" in fs[0].message


def test_102_clean_uniform_loop_via_helper():
    src = """
    def step(comm):
        comm.barrier()

    def main(comm):
        for _ in range(8):
            step(comm)
    """
    assert run(src) == []


# ------------------------------------------------------------------- SPMD201


def test_201_flagged_and_clean_pair():
    flagged = """
    def main(comm):
        comm.send(1, data, tag=(1 << 30) + 3)
    """
    clean = """
    def main(comm):
        comm.send(1, data, tag=(1 << 29))
    """
    assert codes(flagged) == ["SPMD201"]
    assert run(clean) == []


# ------------------------------------------------------------------- SPMD301


def test_301_flagged_free_then_access_via_loop_back_edge():
    # textually the access precedes the free; only the CFG back edge
    # exposes the use-after-free on the second iteration
    src = """
    def main(comm, n):
        win = Window(comm, local)
        win.fence()
        for i in range(n):
            win.put(i, 0, 1)
            win.free()
    """
    fs = run(src)
    assert [f.code for f in fs] == ["SPMD301"]
    assert "free" in fs[0].message


def test_301_clean_free_after_loop():
    src = """
    def main(comm, n):
        win = Window(comm, local)
        win.fence()
        for i in range(n):
            win.put(i, 0, 1)
        win.fence()
        win.free()
    """
    assert run(src) == []


def test_301_flagged_parameter_window_access_before_fence():
    src = """
    def main(comm, win):
        win.put(0, 0, 1)
        win.fence()
    """
    assert codes(src) == ["SPMD301"]


def test_301_nested_function_not_attributed_to_encloser():
    # the first-generation rule used ast.walk and double-reported nested
    # functions' accesses against the enclosing function's windows
    src = """
    def outer(comm):
        win = Window(comm, local)
        win.fence()
        win.put(0, 0, 1)
        win.fence()

        def helper(w):
            w.accumulate(0, 0, 1)

        return helper
    """
    assert run(src) == []


# ------------------------------------------------------------------- SPMD401


def test_401_seeding_stdlib_does_not_excuse_numpy():
    # the first-generation linter suppressed the whole module on *any*
    # .seed() call; scopes must not cross-excuse
    src = """
    import random
    import numpy as np

    def main(comm):
        random.seed(0)
        np.random.shuffle(order)
    """
    fs = run(src)
    assert [f.code for f in fs] == ["SPMD401"]
    assert "np.random.shuffle" in fs[0].message


def test_401_seeding_is_per_function_not_per_module():
    src = """
    import numpy as np

    def seeded(comm):
        np.random.seed(comm.rank)
        np.random.shuffle(order)

    def unseeded(comm):
        np.random.shuffle(order)
    """
    fs = run(src)
    assert [(f.code, f.function) for f in fs] == [("SPMD401", "unseeded")]


def test_401_module_level_seed_excuses_matching_scope():
    src = """
    import numpy as np
    np.random.seed(1234)

    def main(comm):
        np.random.shuffle(order)
    """
    assert run(src) == []


def test_401_seed_must_precede_the_draw():
    src = """
    import numpy as np

    def main(comm):
        np.random.shuffle(order)
        np.random.seed(0)
    """
    assert codes(src) == ["SPMD401"]


# --------------------------------------------------------------- SPMD501/502


def test_501_flagged_recv_without_matching_send():
    src = """
    def main(comm):
        if comm.rank == 0:
            comm.send(1, b"x", tag=3)
        elif comm.rank == 1:
            return comm.recv(0, tag=4)
    """
    fs = run(src)
    assert "SPMD501" in [f.code for f in fs]
    f = next(f for f in fs if f.code == "SPMD501")
    assert "rank 1" in f.message and "tag=4" in f.message


def test_501_clean_matching_tags():
    src = """
    def main(comm):
        if comm.rank == 0:
            comm.send(1, b"x", tag=3)
        elif comm.rank == 1:
            return comm.recv(0, tag=3)
    """
    assert run(src) == []


def test_502_flagged_recv_before_send_ring():
    src = """
    def main(comm):
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        got = comm.recv(left, tag=5)
        comm.send(right, comm.rank, tag=5)
        return got
    """
    fs = run(src)
    assert [f.code for f in fs] == ["SPMD502"]
    assert "cyclic" in fs[0].message


def test_502_clean_parity_ordered_ring():
    src = """
    def main(comm):
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        if comm.rank % 2 == 0:
            comm.send(right, comm.rank, tag=5)
            got = comm.recv(left, tag=5)
        else:
            got = comm.recv(left, tag=5)
            comm.send(right, comm.rank, tag=5)
        return got
    """
    assert run(src) == []


def test_502_clean_sendrecv_ring():
    src = """
    def main(comm):
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        return comm.sendrecv(right, comm.rank, left, tag=5)
    """
    assert run(src) == []


def test_5xx_bails_on_data_dependent_peers():
    # peers from runtime data -> the interpreter cannot enumerate the
    # execution, so it must stay silent (soundness stance)
    src = """
    def main(comm, peers):
        for p in peers:
            comm.send(p, b"x", tag=1)
        return comm.recv(tag=1)
    """
    assert run(src) == []


# --------------------------------------------------------------- SPMD601-603


def test_601_flagged_and_clean_pair():
    flagged = """
    def main(comm, edges):
        frontier = set(edges)
        mate = {}
        for u in frontier:
            mate[u] = u + 1
        return comm.allgather(mate)
    """
    clean = """
    def main(comm, edges):
        frontier = set(edges)
        mate = {}
        for u in sorted(frontier):
            mate[u] = u + 1
        return comm.allgather(mate)
    """
    assert codes(flagged) == ["SPMD601"]
    assert run(clean) == []


def test_602_flagged_and_clean_pair():
    flagged = """
    import time

    def main(comm):
        t = time.perf_counter_ns()
        return comm.allgather(t % 97)
    """
    clean = """
    import time

    def profile():
        return time.perf_counter_ns()
    """
    assert codes(flagged) == ["SPMD602"]
    assert run(clean) == []  # not an SPMD function: clocks are fine


def test_603_flagged_and_clean_pair():
    flagged = """
    def main(comm, weights):
        pool = set(weights)
        total = 0.0
        for w in pool:
            total += w
        return comm.allreduce(total)
    """
    clean = """
    def main(comm, weights):
        pool = set(weights)
        total = 0.0
        for w in sorted(pool):
            total += w
        return comm.allreduce(total)
    """
    assert codes(flagged) == ["SPMD603"]
    assert run(clean) == []


def test_603_flagged_sum_over_set():
    src = """
    def main(comm, weights):
        return comm.allreduce(sum(set(weights)))
    """
    assert codes(src) == ["SPMD603"]


# --------------------------------------------------------------- SPMD701-703


def test_701_flagged_and_clean_pair():
    flagged = """
    CACHE = {}

    def main(comm, k, v):
        CACHE[k] = v
        comm.barrier()
    """
    clean = """
    CACHE = {}

    def main(comm, k, v):
        local = dict(CACHE)
        local[k] = v
        comm.barrier()
        return local
    """
    assert codes(flagged) == ["SPMD701"]
    assert run(clean) == []


def test_701_flagged_global_rebind_and_mutation():
    src = """
    TOTALS = []

    def main(comm, x):
        global BEST
        BEST = x
        TOTALS.append(x)
        comm.barrier()
    """
    assert codes(src) == ["SPMD701", "SPMD701"]


def test_701_clean_local_shadow():
    src = """
    TOTALS = []

    def main(comm, x):
        TOTALS = []
        TOTALS.append(x)
        comm.barrier()
        return TOTALS
    """
    assert run(src) == []


def test_702_flagged_and_clean_pair():
    flagged = """
    def main(comm):
        return comm.bcast(lambda u: u + 1, root=0)
    """
    clean = """
    def main(comm):
        return comm.bcast([1, 2, 3], root=0)
    """
    assert codes(flagged) == ["SPMD702"]
    assert run(clean) == []


def test_702_flagged_generator_and_comm_payloads():
    src = """
    def main(comm):
        comm.send(1, (x * x for x in range(4)), tag=1)
        comm.send(1, comm, tag=2)
    """
    assert codes(src) == ["SPMD702", "SPMD702"]


def test_703_flagged_and_clean_pair():
    flagged = """
    def launch(spmd, data):
        def rank_main(comm):
            return data

        return spmd(4, rank_main)
    """
    clean = """
    def rank_main(comm, data):
        return data

    def launch(spmd, data):
        return spmd(4, rank_main, data)
    """
    assert codes(flagged) == ["SPMD703"]
    assert run(clean) == []


# ----------------------------------------------------------- SPMD301 epochs


def test_301_fence_inside_loop_keeps_epoch_open():
    # CFG ordering, not lineno ordering: the fence at the loop tail
    # re-opens the epoch for the access at the loop head's next iteration
    src = """
    def main(comm, n):
        win = Window(comm, local)
        win.fence()
        for i in range(n):
            win.put(i, 0, 1)
            win.fence()
        win.free()
    """
    assert run(src) == []
