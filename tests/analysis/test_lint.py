"""Static SPMD linter: rule catalogue, formatting, and the seeded fixture."""

import json
from pathlib import Path

import pytest

from repro.analysis import Finding, format_json, format_text, lint_file, lint_paths, lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = REPO_ROOT / "examples" / "buggy_spmd.py"


def codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------- SPMD101/102


def test_divergent_collective_in_rank_branch_flagged():
    src = """
def main(comm):
    if comm.rank == 0:
        comm.allreduce(1)
"""
    fs = lint_source(src)
    assert codes(fs) == ["SPMD101"]
    assert fs[0].function == "main"
    assert "allreduce" in fs[0].message


def test_mismatched_collective_sequences_across_branches_flagged():
    src = """
def main(comm):
    if comm.rank % 2:
        comm.bcast(0, root=0)
        comm.barrier()
    else:
        comm.barrier()
        comm.bcast(0, root=0)
"""
    assert codes(lint_source(src)) == ["SPMD101"]


def test_symmetric_branches_are_clean():
    src = """
def main(comm):
    if comm.rank == 0:
        payload = comm.bcast(local, root=0)
    else:
        payload = comm.bcast(None, root=0)
    return payload
"""
    assert lint_source(src) == []


def test_rank_taint_propagates_through_assignment():
    src = """
def main(comm):
    me = comm.rank
    is_root = me == 0
    if is_root:
        comm.reduce(x, op=SUM, root=0)
"""
    assert codes(lint_source(src)) == ["SPMD101"]


def test_collective_in_rank_dependent_loop_flagged():
    src = """
def main(comm):
    for _ in range(comm.rank):
        comm.barrier()
"""
    assert codes(lint_source(src)) == ["SPMD102"]


def test_collective_in_uniform_loop_is_clean():
    src = """
def main(comm):
    for _ in range(10):
        comm.barrier()
"""
    assert lint_source(src) == []


def test_string_split_is_not_a_collective():
    src = """
def main(comm):
    parts = "a,b,c".split(",")
    if comm.rank == 0:
        print(parts)
"""
    assert lint_source(src) == []


# ------------------------------------------------------------------- SPMD201


def test_reserved_tag_literal_flagged():
    src = """
def main(comm):
    comm.send(1, payload, tag=1 << 30)
"""
    fs = lint_source(src)
    assert codes(fs) == ["SPMD201"]
    assert "1073741824" in fs[0].message or "1 << 30" in fs[0].message


def test_reserved_tag_folded_expression_and_positional_slot():
    src = """
def main(comm):
    comm.recv(0, (1 << 30) + 7)
"""
    assert codes(lint_source(src)) == ["SPMD201"]


def test_small_user_tag_is_clean():
    src = """
def main(comm):
    comm.send(1, payload, tag=41)
    comm.recv(0, tag=41)
"""
    assert lint_source(src) == []


# ------------------------------------------------------------------- SPMD301


def test_rma_access_before_any_fence_flagged():
    src = """
def main(comm):
    win = Window(comm, local)
    win.put(0, 0, 5)
"""
    fs = lint_source(src)
    assert codes(fs) == ["SPMD301"]


def test_rma_access_after_free_flagged():
    src = """
def main(comm):
    win = Window(comm, local)
    win.fence()
    win.free()
    win.get(0, 0)
"""
    assert codes(lint_source(src)) == ["SPMD301"]


def test_fenced_rma_epoch_is_clean():
    src = """
def main(comm):
    win = Window(comm, local)
    win.fence()
    win.put(0, 0, 5)
    got = win.get(1, 0)
    win.fence()
    win.free()
    return got
"""
    assert lint_source(src) == []


# ------------------------------------------------------------------- SPMD401


def test_unseeded_numpy_random_in_spmd_function_flagged():
    src = """
import numpy as np

def main(comm):
    np.random.shuffle(order)
"""
    assert codes(lint_source(src)) == ["SPMD401"]


def test_seeded_rng_is_clean():
    src = """
import numpy as np

def main(comm):
    rng = np.random.default_rng(comm.rank)
    rng.shuffle(order)
"""
    assert lint_source(src) == []


def test_non_spmd_function_may_use_random():
    src = """
import random

def shuffle_deck(deck):
    random.shuffle(deck)
"""
    assert lint_source(src) == []


# ------------------------------------------------------- files & aggregation


def test_syntax_error_becomes_spmd000_finding():
    fs = lint_source("def broken(:\n")
    assert codes(fs) == ["SPMD000"]


#: (code, function) of every seeded bug in the fixture file, in report
#: (line) order.  One fixture per rule; SPMD101 has two (direct + via
#: helper).  Kept in sync with the table in the fixture's docstring.
FIXTURE_BUGS = [
    ("SPMD101", "divergent_reduction"),
    ("SPMD201", "reserved_tag_exchange"),
    ("SPMD401", "unseeded_shuffle"),
    ("SPMD101", "divergent_via_helper"),
    ("SPMD102", "rank_bounded_barriers"),
    ("SPMD301", "fenceless_put"),
    ("SPMD501", "lonely_recv"),
    ("SPMD502", "ring_recv_before_send"),
    ("SPMD601", "set_ordered_mates"),
    ("SPMD602", "clock_seeded_mates"),
    ("SPMD603", "set_ordered_sum"),
    ("SPMD701", "global_mate_cache"),
    ("SPMD702", "lambda_payload"),
    ("SPMD703", "closure_launcher"),
]


def test_fixture_reports_exactly_the_seeded_bugs():
    fs = lint_file(FIXTURE)
    assert [(f.code, f.function) for f in fs] == FIXTURE_BUGS
    for f in fs:
        assert f.path.endswith("buggy_spmd.py")
        assert f.line > 0 and f.col >= 0


def test_every_rule_has_a_fixture():
    from repro.analysis import RULES

    covered = {code for code, _ in FIXTURE_BUGS}
    assert covered == set(RULES) - {"SPMD000"}


def test_source_tree_is_clean():
    assert lint_paths([str(REPO_ROOT / "src" / "repro")]) == []


def test_lint_paths_exclude_and_missing_target():
    examples = str(REPO_ROOT / "examples")
    with_bugs = lint_paths([examples])
    without = lint_paths([examples], exclude=[str(FIXTURE)])
    assert len(with_bugs) == len(FIXTURE_BUGS)
    assert without == []
    with pytest.raises(FileNotFoundError):
        lint_paths([str(REPO_ROOT / "no_such_dir")])


# --------------------------------------------------------------- formatting


def test_format_text_lists_location_code_and_summary():
    fs = lint_file(FIXTURE)
    text = format_text(fs)
    for f in fs:
        assert f"{f.line}:" in text and f.code in text
    assert f"{len(FIXTURE_BUGS)} finding(s)" in text


def test_format_text_clean():
    assert "no findings" in format_text([])


def test_format_json_round_trips():
    fs = lint_file(FIXTURE)
    payload = json.loads(format_json(fs))
    assert [e["code"] for e in payload] == codes(fs)
    assert all({"path", "line", "col", "code", "message"} <= set(e) for e in payload)


def test_findings_sort_by_location():
    a = Finding("b.py", 1, 0, "SPMD101", "m")
    b = Finding("a.py", 9, 0, "SPMD401", "m")
    c = Finding("a.py", 2, 0, "SPMD201", "m")
    from repro.analysis import sort_findings

    assert sort_findings([a, b, c]) == [c, b, a]


# ---------------------------------------------------------------------- CLI


def test_cli_lint_exit_codes_and_output(capsys):
    from repro.cli import main

    assert main(["lint", str(FIXTURE)]) == 1
    out = capsys.readouterr().out
    assert "SPMD101" in out and "SPMD201" in out and "SPMD401" in out

    assert main(["lint", str(REPO_ROOT / "src" / "repro")]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_lint_json_format(capsys):
    from repro.cli import main

    assert main(["lint", str(FIXTURE), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == len(FIXTURE_BUGS)


def test_cli_lint_missing_path_is_usage_error(capsys):
    from repro.cli import main

    assert main(["lint", str(REPO_ROOT / "nowhere.py")]) == 2
