"""SARIF 2.1.0 output: structural validation and schema conformance.

The full OASIS schema cannot be fetched in CI, so conformance is checked
against an embedded subset schema covering every construct the emitter
produces (the properties GitHub code scanning actually requires), plus
hand-written structural assertions for the parts a subset schema cannot
pin (rule-index consistency, location correctness).
"""

import json
from pathlib import Path

import pytest

from repro.analysis import RULES, lint_file, sarif_log
from repro.analysis.sarif import SARIF_SCHEMA, format_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = REPO_ROOT / "examples" / "buggy_spmd.py"

#: Subset of the SARIF 2.1.0 schema: required top-level shape, runs,
#: tool.driver with rules, and results with physical locations.  Field
#: names and requiredness mirror the OASIS schema.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"],
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {"type": "string"},
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def fixture_log():
    return sarif_log(lint_file(FIXTURE))


def test_sarif_validates_against_subset_schema():
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(fixture_log(), SARIF_SUBSET_SCHEMA)


def test_sarif_header_names_the_official_schema():
    log = fixture_log()
    assert log["version"] == "2.1.0"
    assert log["$schema"] == SARIF_SCHEMA
    assert "sarif-schema-2.1.0" in log["$schema"]


def test_sarif_rules_catalogue_is_complete_and_indexed():
    log = fixture_log()
    driver = log["runs"][0]["tool"]["driver"]
    ids = [r["id"] for r in driver["rules"]]
    assert ids == sorted(RULES)
    for result in log["runs"][0]["results"]:
        idx = result["ruleIndex"]
        assert driver["rules"][idx]["id"] == result["ruleId"]


def test_sarif_results_point_at_the_fixture():
    log = fixture_log()
    results = log["runs"][0]["results"]
    assert results, "fixture must produce findings"
    for result in results:
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("buggy_spmd.py")
        assert loc["region"]["startLine"] >= 1
        assert loc["region"]["startColumn"] >= 1
        assert result["level"] in ("error", "warning")


def test_sarif_levels_follow_rule_severity():
    log = fixture_log()
    for result in log["runs"][0]["results"]:
        assert result["level"] == RULES[result["ruleId"]][1]


def test_empty_findings_still_valid_sarif():
    jsonschema = pytest.importorskip("jsonschema")
    log = sarif_log([])
    jsonschema.validate(log, SARIF_SUBSET_SCHEMA)
    assert log["runs"][0]["results"] == []


def test_format_sarif_is_deterministic_json():
    a = format_sarif(lint_file(FIXTURE))
    b = format_sarif(lint_file(FIXTURE))
    assert a == b
    json.loads(a)  # must be valid JSON text


def test_cli_writes_sarif_artifact(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "lint.sarif"
    code = main(["lint", str(FIXTURE), "--format", "sarif",
                 "--output", str(out)])
    assert code == 1  # findings present even though report went to a file
    log = json.loads(out.read_text())
    assert log["version"] == "2.1.0"
    assert len(log["runs"][0]["results"]) > 0
