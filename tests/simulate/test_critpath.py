"""Unit tests for the critical-path analyzer on a hand-built trace.

The fixture is small enough to verify every reported number by hand:

rank 0:  phase 1 [0, 10)                      self 10-7-2 = 1
           spmv [1, 8)   dur 7                self 7-5  = 2
             allgather [2, 7) dur 5, wait 3   self        5
           augment [8, 10) dur 2              self        2
rank 1:  phase 1 [0, 4)                       self 4-2  = 2
           spmv [0.5, 2.5) dur 2, wait 1      self        2

Critical rank is 0 (10 vs 4), skew (10-4)/10 = 0.6, and the largest-child
descent is phase > spmv > allgather.
"""

import json

from repro.runtime.trace import DistTrace, Span
from repro.simulate.critpath import analyze, format_report


def _span(name, cat, rank, ts, dur, bseq, eseq, **args):
    return Span(name=name, cat=cat, rank=rank, ts=ts, dur=dur,
                args=args, bseq=bseq, eseq=eseq)


def _fixture() -> DistTrace:
    r0 = [
        _span("allgather", "comm", 0, 2.0, 5.0, 3, 4, alg="dissemination",
              words=7, wait=3.0),
        _span("spmv", "kernel", 0, 1.0, 7.0, 2, 5),
        _span("augment", "phase", 0, 8.0, 2.0, 6, 7),
        _span("phase", "phase", 0, 0.0, 10.0, 1, 8, phase=1),
    ]
    r1 = [
        _span("spmv", "kernel", 1, 0.5, 2.0, 2, 3, wait=1.0),
        _span("phase", "phase", 1, 0.0, 4.0, 1, 4, phase=1),
        _span("restart", "fault", 1, 11.0, 0.0, 5, 6, attempt=1),
    ]
    return DistTrace(2, [r0, r1], meta={
        "clock": "ticks",
        "idle_wait": [0.0, 1.5],
        "attempts": [{"at": 11.0, "attempt": 1}],
    })


def test_analyze_reports_hand_computed_numbers():
    rep = analyze(_fixture(), top=3)
    assert rep["nranks"] == 2
    assert rep["nspans"] == 7
    assert rep["restarts"] == 1

    r0, r1 = rep["ranks"]
    assert r0["makespan"] == 10.0
    assert r0["wait"] == 3.0
    assert r0["wait_fraction"] == 0.3
    assert r1["makespan"] == 11.0  # through the restart marker
    assert r1["wait"] == 1.0 + 1.5  # span wait + idle wait

    (ph,) = rep["phases"]
    assert ph["label"] == "phase 1"
    assert ph["critical_rank"] == 0
    assert ph["dur_max"] == 10.0
    assert ph["dur_min"] == 4.0
    assert ph["skew"] == 0.6
    assert ph["critical_path"] == ["phase", "spmv", "allgather"]
    assert ph["dominant"]["name"] == "allgather"
    assert ph["dominant"]["self"] == 5.0

    # job-wide self times: allgather 5, spmv 2+2, phase 1+2, augment 2
    tops = {t["name"]: t["self"] for t in rep["top_spans"]}
    assert tops == {"allgather": 5.0, "spmv": 4.0, "phase": 3.0}
    assert rep["top_spans"][0]["name"] == "allgather"

    assert rep["faults"] == [
        {"name": "restart", "rank": 1, "ts": 11.0, "args": {"attempt": 1}}
    ]
    assert rep["comm_words_by_op"] == {"allgather": 7}
    json.dumps(rep)  # JSON-clean


def test_format_report_renders_every_section():
    rep = analyze(_fixture(), top=3)
    text = format_report(rep)
    assert "2 rank(s)" in text
    assert "1 restart(s)" in text
    assert "phase 1" in text
    assert "phase > spmv > allgather" in text
    assert "allgather self=5.0" in text
    assert "faults / restarts:" in text
    assert "allgather=7" in text


def test_round_trip_through_chrome_preserves_the_report():
    trace = _fixture()
    back = DistTrace.from_chrome(json.loads(json.dumps(trace.to_chrome())))
    a, b = analyze(trace, top=3), analyze(back, top=3)
    assert a["phases"] == b["phases"]
    assert a["top_spans"] == b["top_spans"]
    assert a["comm_words_by_op"] == b["comm_words_by_op"]
