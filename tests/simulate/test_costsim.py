"""Execution-driven performance simulation: recording, pricing, invariants."""

import numpy as np
import pytest

from repro.graphs import generators as G, rmat, suite
from repro.perfmodel import EDISON, Category
from repro.simulate import (
    gather_scatter_time,
    price,
    record,
    scaled_machine,
    simulate_mcm,
    sweep,
)
from repro.simulate.report import (
    CSV_FIELDS,
    breakdown_table,
    results_to_rows,
    speedup_table,
    write_csv,
)
from repro.sparse import COO, CSC


@pytest.fixture(scope="module")
def g500_trace():
    return record(rmat.g500(scale=9, seed=1))


def test_record_produces_correct_matching(g500_trace):
    """The trace's embedded matching must be the true optimum — the
    simulator runs the REAL algorithm, not an approximation of it."""
    from tests.matching.conftest import scipy_optimum

    t = g500_trace
    assert t.cardinality > 0
    assert t.stats.final_cardinality == t.cardinality
    assert len(t.events) > 0
    kinds = {k for k, _ in t.events}
    assert {"spmv", "select_set", "iteration_end", "phase_end"} <= kinds
    assert {"init_explore", "init_round_end"} <= kinds


def test_record_unknown_init():
    with pytest.raises(ValueError, match="unknown init"):
        record(rmat.er(scale=6), init="quantum")


def test_record_without_init_has_no_init_events():
    t = record(rmat.er(scale=7, seed=2), init=None)
    assert not any(k.startswith("init") for k, _ in t.events)


def test_price_monotone_categories(g500_trace):
    r = price(g500_trace, 192, 12)
    assert r.seconds > 0
    assert r.grid.pr == r.grid.pc == 4
    # all major categories charged
    for cat in (Category.SPMV, Category.INVERT, Category.SELECT_SET, Category.INIT):
        assert r.breakdown.seconds(cat) > 0
    # total is the sum of categories
    assert r.seconds == pytest.approx(r.breakdown.total)


def test_same_trace_prices_deterministically(g500_trace):
    a = price(g500_trace, 432, 12)
    b = price(g500_trace, 432, 12)
    assert a.seconds == b.seconds


def test_compute_shrinks_with_cores(g500_trace):
    """Per-rank compute must drop as the grid grows (work is partitioned)."""
    small = price(g500_trace, 48, 12)
    large = price(g500_trace, 1200, 12)
    assert large.breakdown.total_compute < small.breakdown.total_compute


def test_invert_share_grows_with_cores(g500_trace):
    """The paper's Fig. 5 observation: INVERT's relative weight rises with
    concurrency while SpMV's falls."""
    m = scaled_machine(1000)
    small = price(g500_trace, 48, 12, m)
    large = price(g500_trace, 2028, 12, m)
    assert large.breakdown.fraction(Category.INVERT) > small.breakdown.fraction(Category.INVERT)
    # ... and grows faster than SpMV: the INVERT/SpMV ratio must rise
    ratio_small = small.breakdown.seconds(Category.INVERT) / small.breakdown.seconds(Category.SPMV)
    ratio_large = large.breakdown.seconds(Category.INVERT) / large.breakdown.seconds(Category.SPMV)
    assert ratio_large > ratio_small


def test_pairwise_alltoall_costs_more_than_bruck_at_scale(g500_trace):
    """The worst-case (paper analysis) collectives must be costlier than the
    small-message algorithms at high process counts."""
    bruck = price(g500_trace, 2028, 12, alltoall="bruck", allgather="doubling")
    pairwise = price(g500_trace, 2028, 12, alltoall="pairwise", allgather="ring")
    assert pairwise.seconds > bruck.seconds


def test_hybrid_beats_flat_mpi(g500_trace):
    """Fig. 7: at equal cores, 12 threads/process beats flat MPI because the
    process grid (and hence every latency term) shrinks."""
    m = scaled_machine(1000)
    flat = price(g500_trace, 1728, 1, m)
    hybrid = price(g500_trace, 1728, 12, m)
    assert hybrid.seconds < flat.seconds


def test_sweep_scaling_shape():
    """Strong-scaling on a reasonably sized synthetic: time at high core
    count must be lower than at the base (speedup > 1), and the small-scale
    behaviour must not be super-linear beyond 2x grid-rounding noise."""
    coo = rmat.er(scale=11, seed=3)
    m = scaled_machine(2000)
    res = sweep(coo, [48, 192, 768, 2028], threads=12, machine=m)
    times = [r.seconds for r in res]
    assert times[-1] < times[0]
    speedup = times[0] / times[-1]
    assert 1.5 < speedup < 2028 / 48 * 2


def test_augment_switch_depends_on_p(g500_trace):
    """k < 2p²: at 1 process everything is level-parallel unless k is tiny;
    at large P the same trace must use path-parallel augmentation.  We
    detect the switch through its cost signature (pricing differs)."""
    m = scaled_machine(1000)
    lo = price(g500_trace, 24, 6, m)
    hi = price(g500_trace, 2028, 12, m)
    assert lo.breakdown.seconds(Category.AUGMENT) > 0
    assert hi.breakdown.seconds(Category.AUGMENT) > 0


def test_permute_flag_affects_balance():
    """Unpermuted mesh concentrates nonzeros on diagonal blocks: busiest-rank
    compute must exceed the permuted case."""
    coo = G.mesh2d(40)
    t_perm = record(coo, permute=True)
    t_raw = record(coo, permute=False)
    m = scaled_machine(1)
    r_perm = price(t_perm, 1200, 12, m)
    r_raw = price(t_raw, 1200, 12, m)
    assert r_raw.breakdown.total_compute > r_perm.breakdown.total_compute


def test_simulate_mcm_one_shot():
    r = simulate_mcm(rmat.ssca(scale=8, seed=5), cores=108, threads=12)
    assert r.cores == 108
    assert r.cardinality > 0


# -- gather model (Fig. 9) -----------------------------------------------------------

def test_gather_time_linear_in_edges():
    a = gather_scatter_time(int(1e6), int(1e6 // 30))
    b = gather_scatter_time(int(1e8), int(1e8 // 30))
    assert b.total > 50 * a.total
    assert b.gather > b.scatter  # edges dominate the mate vectors


def test_gather_components_positive():
    c = gather_scatter_time(10_000_000, 300_000, cores=2048)
    assert c.gather > 0 and c.preprocess > 0 and c.scatter > 0
    assert c.total == pytest.approx(c.gather + c.preprocess + c.scatter)


def test_paper_fig9_magnitude():
    """~900M nonzeros at 2048 cores took ≈20 s in the paper; the model must
    land within an order of magnitude."""
    c = gather_scatter_time(900_000_000, 16_240_000, cores=2048)
    assert 2.0 < c.total < 200.0


# -- report helpers -----------------------------------------------------------------

def test_report_tables_and_csv(tmp_path, g500_trace):
    res = [price(g500_trace, c, 12) for c in (48, 192)]
    table = speedup_table(res, "test")
    assert "cores" in table and "speedup" in table
    btable = breakdown_table(res)
    assert "SpMV" in btable
    rows = results_to_rows("g500", res)
    assert rows[0]["speedup"] == 1.0
    path = write_csv(tmp_path / "out.csv", rows, CSV_FIELDS)
    assert path.exists()
    assert "g500" in path.read_text()


def test_speedup_table_empty():
    assert "no results" in speedup_table([])
