"""Structural generators and the Table II stand-in suite."""

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.suite import LARGE, REPRESENTATIVE, SMALL, SUITE, load
from repro.matching import maximal_matching
from repro.sparse import CSC


def test_mesh2d_degrees_and_symmetry():
    g = G.mesh2d(10)
    assert g.shape == (100, 100)
    deg = g.row_degrees()
    assert deg.max() <= 4
    assert g == g.transpose()  # symmetric pattern


def test_mesh2d_diagonals_raise_degree():
    g = G.mesh2d(10, diagonals=True)
    assert g.row_degrees().max() <= 8
    assert g.row_degrees().max() > 4


def test_mesh2d_drop_reduces_edges():
    full = G.mesh2d(20)
    dropped = G.mesh2d(20, drop=0.3, seed=1)
    assert dropped.nnz < full.nnz


def test_triangulation_average_degree_near_six():
    g = G.triangulation_like(2000, seed=0)
    avg = g.nnz / g.nrows
    assert 4.0 <= avg <= 7.0
    assert g == g.transpose()


def test_banded_stays_near_diagonal():
    g = G.banded(500, bandwidth=10, per_row=5, seed=0)
    assert (np.abs(g.rows - g.cols) <= 10).all()
    # near-full structural rank: partial diagonal + dense band
    mr, _ = maximal_matching(g, "greedy")
    from repro.matching.validate import cardinality
    assert cardinality(mr) > 450


def test_banded_full_diagonal_gives_full_rank():
    g = G.banded(300, bandwidth=5, per_row=3, seed=1, diag_frac=1.0)
    mr, _ = maximal_matching(g, "greedy")
    from repro.matching.validate import cardinality
    assert cardinality(mr) == 300


def test_kkt_block_has_zero_block_structure():
    g = G.kkt_block(300, seed=0)
    n = 300 + 150
    assert g.shape == (n, n)
    # (2,2) block (constraint x constraint) must be empty
    in_22 = (g.rows >= 300) & (g.cols >= 300)
    assert not in_22.any()
    assert g == g.transpose()


def test_clique_overlap_is_dense_locally():
    g = G.clique_overlap(200, clique_size=10, seed=0)
    assert g.row_degrees().mean() > 8
    assert g == g.transpose()


def test_boundary_map_rectangular_fixed_coldegree():
    g = G.boundary_map(300, 200, per_col=7, seed=0)
    assert g.shape == (300, 200)
    # dedup can only lower column degree below per_col
    assert (g.col_degrees() <= 7).all()
    assert g.col_degrees().mean() > 6


def test_long_path_diameter():
    g = G.long_path(50)
    deg = g.row_degrees()
    assert (deg[1:-1] == 2).all() and deg[0] == deg[-1] == 1


def test_bipartite_er_shape():
    g = G.bipartite_er(40, 60, 200, seed=0)
    assert g.shape == (40, 60)
    assert 0 < g.nnz <= 200


# -- suite ------------------------------------------------------------------------

def test_suite_has_thirteen_entries_with_paper_stats():
    assert len(SUITE) == 13
    for e in SUITE.values():
        assert e.paper_rows > 0 and e.paper_nnz > 0
        assert e.description


def test_suite_splits_cover_all():
    assert set(SMALL) | set(LARGE) == set(SUITE)
    assert not set(SMALL) & set(LARGE)
    assert set(REPRESENTATIVE) <= set(SUITE)


@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_entries_build_and_match(name):
    g = load(name, reduction=65536, seed=0)
    assert g.nnz > 0
    # every stand-in must be usable by the matching stack end to end
    csc = CSC.from_coo(g)
    mr, mc = maximal_matching(csc, "greedy")
    from repro.matching.validate import is_maximal_matching, is_valid_matching
    assert is_valid_matching(csc, mr, mc)
    assert is_maximal_matching(csc, mr, mc)


def test_suite_gl7d19_is_rectangular():
    g = load("GL7d19", reduction=8192)
    assert g.nrows != g.ncols


def test_suite_reduction_scales_size():
    small = load("road_usa", reduction=131072)
    big = load("road_usa", reduction=16384)
    assert big.nnz > small.nnz


def test_suite_unknown_name():
    with pytest.raises(KeyError, match="unknown suite matrix"):
        load("does-not-exist")


def test_suite_entry_target_n_and_validation():
    e = SUITE["road_usa"]
    assert e.target_n(reduction=1024) == 23_947_347 // 1024
    with pytest.raises(ValueError):
        e.make(reduction=0)
