"""RMAT generator: parameter presets, shape/size, degree-skew invariants."""

import numpy as np
import pytest

from repro.graphs import rmat
from repro.graphs.rmat import ER_PARAMS, G500_PARAMS, SSCA_PARAMS, RmatParams, rmat_graph


def test_paper_seed_parameters():
    """§V-B's exact parameter sets."""
    assert (G500_PARAMS.a, G500_PARAMS.b, G500_PARAMS.c, G500_PARAMS.d) == (0.57, 0.19, 0.19, 0.05)
    assert SSCA_PARAMS.a == 0.6
    assert SSCA_PARAMS.b == SSCA_PARAMS.c == SSCA_PARAMS.d == pytest.approx(0.4 / 3)
    assert ER_PARAMS == RmatParams(0.25, 0.25, 0.25, 0.25)


def test_params_validation():
    with pytest.raises(ValueError):
        RmatParams(0.5, 0.5, 0.5, 0.5)
    with pytest.raises(ValueError):
        RmatParams(1.2, -0.2, 0.0, 0.0)


def test_scale_gives_power_of_two_dimensions():
    g = rmat.g500(scale=8, seed=1)
    assert g.shape == (256, 256)
    g = rmat.ssca(scale=6, seed=1)
    assert g.shape == (64, 64)


def test_edge_count_near_edgefactor_times_n():
    g = rmat.er(scale=10, seed=2)  # dedup losses are small for ER
    n = 1024
    assert 0.9 * 32 * n <= g.nnz <= 32 * n


def test_g500_is_skewed_er_is_not():
    """G500's max degree must far exceed ER's at equal size/edgefactor —
    the paper's 'skewed degree distributions' claim."""
    g = rmat.g500(scale=12, seed=3)
    e = rmat.er(scale=12, seed=3)
    assert g.row_degrees().max() > 3 * e.row_degrees().max()


def test_ssca_skew_between_er_and_g500():
    g = rmat.g500(scale=11, seed=4).row_degrees().max()
    s = rmat.ssca(scale=11, seed=4).row_degrees().max()
    e = rmat.er(scale=11, seed=4).row_degrees().max()
    assert e < s < g


def test_determinism_and_seed_sensitivity():
    a = rmat.g500(scale=8, seed=5)
    b = rmat.g500(scale=8, seed=5)
    c = rmat.g500(scale=8, seed=6)
    assert a == b
    assert a != c


def test_permute_flag():
    """Unpermuted G500 concentrates nonzeros in low indices (quadrant a);
    permutation spreads them."""
    raw = rmat.g500(scale=10, seed=7, permute=False)
    perm = rmat.g500(scale=10, seed=7, permute=True)
    n = 1024
    low_raw = (raw.rows < n // 4).mean()
    low_perm = (perm.rows < n // 4).mean()
    assert low_raw > 0.5 > low_perm
    assert abs(low_perm - 0.25) < 0.05


def test_scale_zero_and_validation():
    g = rmat_graph(0, 4, ER_PARAMS, seed=0)
    assert g.shape == (1, 1)
    with pytest.raises(ValueError):
        rmat_graph(-1, 4, ER_PARAMS)
    with pytest.raises(ValueError):
        rmat_graph(31, 4, ER_PARAMS)


def test_indices_in_range():
    g = rmat.g500(scale=9, seed=8)
    assert g.rows.min() >= 0 and g.rows.max() < 512
    assert g.cols.min() >= 0 and g.cols.max() < 512
